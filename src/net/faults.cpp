#include "net/faults.hpp"

namespace zmail::net {

bool FaultInjector::partitioned(sim::SimTime now, HostId a,
                                HostId b) const noexcept {
  for (const Partition& p : plan_.partitions) {
    const bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && now >= p.from && now < p.until) return true;
  }
  return false;
}

sim::SimTime FaultInjector::down_until(sim::SimTime now,
                                       HostId h) const noexcept {
  for (const HostOutage& o : plan_.outages)
    if (o.host == h && now >= o.from && now < o.until) return o.until;
  return 0;
}

FaultInjector::Fate FaultInjector::on_send(sim::SimTime now, HostId from,
                                           HostId to, MsgType type) {
  Fate fate;
  // Topology faults first — a crashed sender emits nothing and a
  // partitioned link swallows the send whatever the datagram type; the
  // per-datagram rates below honour the only_types filter.
  if (down_until(now, from) != 0) {
    ++counters_.outage_lost;
    fate.drop = true;
    return fate;
  }
  if (partitioned(now, from, to)) {
    ++counters_.partitioned;
    fate.drop = true;
    return fate;
  }
  if (!plan_.applies_to(type)) return fate;
  if (keyed_stride_ != 0) {
    // One per-pair stream per decision: every probabilistic draw for this
    // datagram (and its payload mutations, which follow synchronously)
    // comes from a generator that is a pure function of
    // (seed, from, to, k) — partition-independent by construction.
    const std::uint64_t k = keyed_draws_[from * keyed_stride_ + to]++;
    keyed_rng_ = pair_keyed_rng(seed_ ^ 0xFA17FA17FA17FA17ULL, from, to, k);
  }
  Rng& rng = draw_rng();
  // Fixed draw order keeps the fault stream replayable: drop, duplicate,
  // then per-copy fates decided by the caller via this same Fate.
  const FaultRates& r = plan_.rates;
  if (r.drop > 0.0 && rng.bernoulli(r.drop)) {
    ++counters_.dropped;
    fate.drop = true;
    return fate;
  }
  if (r.duplicate > 0.0 && rng.bernoulli(r.duplicate)) {
    ++counters_.duplicated;
    fate.copies = 2;
  }
  if (r.reorder > 0.0 && rng.bernoulli(r.reorder)) {
    ++counters_.reordered;
    fate.reorder = true;
  }
  if (r.corrupt > 0.0 && rng.bernoulli(r.corrupt)) {
    ++counters_.corrupted;
    fate.corrupt = true;
  }
  if (r.truncate > 0.0 && rng.bernoulli(r.truncate)) {
    ++counters_.truncated;
    fate.truncate = true;
  }
  if (r.delay_spike > 0.0 && rng.bernoulli(r.delay_spike)) {
    ++counters_.delayed;
    fate.extra_delay = sim::from_seconds(
        rng.exponential(1.0 / sim::to_seconds(r.spike_mean)));
  }
  return fate;
}

void FaultInjector::corrupt_payload(crypto::Bytes& payload) {
  if (payload.empty()) return;
  const std::uint64_t bit = draw_rng().next_below(payload.size() * 8);
  payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void FaultInjector::truncate_payload(crypto::Bytes& payload) {
  if (payload.empty()) return;
  payload.resize(draw_rng().next_below(payload.size()));
}

}  // namespace zmail::net
