#include "net/network.hpp"

#include "util/assert.hpp"

namespace zmail::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : sim_(simulator), rng_(rng), latency_(latency) {}

HostId Network::add_host(std::string name, HandlerFn handler) {
  ZMAIL_ASSERT(handler != nullptr);
  hosts_.push_back(Host{std::move(name), std::move(handler), {}});
  bytes_to_.push_back(0);
  return hosts_.size() - 1;
}

void Network::bind_domain(const std::string& domain, HostId host) {
  ZMAIL_ASSERT(host < hosts_.size());
  mx_[domain] = host;
}

HostId Network::resolve(const std::string& domain) const {
  const auto it = mx_.find(domain);
  return it == mx_.end() ? kNoHost : it->second;
}

void Network::send(HostId from, HostId to, std::string type,
                   crypto::Bytes payload) {
  ZMAIL_ASSERT(from < hosts_.size() && to < hosts_.size());
  const std::size_t size = payload.size() + type.size() + 16;
  ++datagrams_;
  bytes_ += size;
  bytes_to_[to] += size;

  sim::SimTime deliver_at = sim_.now() + latency_.sample(rng_);
  // Enforce per-(from,to) FIFO: never deliver before an earlier datagram.
  auto& last = hosts_[to].last_delivery[from];
  if (deliver_at <= last) deliver_at = last + 1;
  last = deliver_at;

  Datagram d{std::move(type), std::move(payload), from, to};
  sim_.schedule_at(deliver_at, [this, to, d = std::move(d)]() mutable {
    hosts_[to].handler(d);
  });
}

}  // namespace zmail::net
