#include "core/audit.hpp"

#include <cinttypes>
#include <cstdio>

namespace zmail::core {

const char* audit_kind_name(AuditKind k) noexcept {
  switch (k) {
    case AuditKind::kMint: return "mint";
    case AuditKind::kMintRejected: return "mint-rejected";
    case AuditKind::kBurn: return "burn";
    case AuditKind::kRoundStarted: return "round-started";
    case AuditKind::kReportReceived: return "report-received";
    case AuditKind::kViolationFlagged: return "violation";
    case AuditKind::kSettlement: return "settlement";
    case AuditKind::kRoundCompleted: return "round-completed";
    case AuditKind::kEnvelopeRejected: return "envelope-rejected";
    case AuditKind::kStaleReport: return "stale-report";
  }
  return "?";
}

std::string AuditEvent::str() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "[seq %" PRIu64 "] %-17s a=%zu b=%zu amount=%" PRId64,
                seq, audit_kind_name(kind), a, b, amount);
  return buf;
}

std::uint64_t AuditJournal::count(AuditKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

std::int64_t AuditJournal::net_minted() const noexcept {
  std::int64_t net = 0;
  for (const auto& e : events_) {
    if (e.kind == AuditKind::kMint) net += e.amount;
    if (e.kind == AuditKind::kBurn) net -= e.amount;
  }
  return net;
}

std::int64_t AuditJournal::settlement_volume() const noexcept {
  std::int64_t total = 0;
  for (const auto& e : events_)
    if (e.kind == AuditKind::kSettlement)
      total += e.amount < 0 ? -e.amount : e.amount;
  return total;
}

std::string AuditJournal::text() const {
  std::string out;
  for (const auto& e : events_) {
    out += e.str();
    out += '\n';
  }
  return out;
}

}  // namespace zmail::core
