#include <gtest/gtest.h>

#include "workload/corpus.hpp"
#include "workload/traffic.hpp"
#include "workload/virus.hpp"

namespace zmail::workload {
namespace {

// --- Corpus -----------------------------------------------------------------

TEST(Corpus, TokenizeBasics) {
  const auto t = tokenize("Hello, World! a b2c x");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "hello");
  EXPECT_EQ(t[1], "world");
  EXPECT_EQ(t[2], "b2c");  // single chars dropped
}

TEST(Corpus, TokenizeEmptyAndPunctuation) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("!!! . , ;").empty());
}

TEST(Corpus, HamBodyHasNoSpamTokens) {
  CorpusGenerator gen(CorpusParams{}, zmail::Rng(1));
  for (int i = 0; i < 20; ++i) {
    for (const auto& tok : tokenize(gen.ham_body()))
      EXPECT_FALSE(gen.is_spam_token(tok)) << tok;
  }
}

TEST(Corpus, SpamBodyIsMostlySpamVocabulary) {
  CorpusParams p;
  p.spam_ham_mix = 0.3;
  CorpusGenerator gen(p, zmail::Rng(2));
  std::size_t spam_tokens = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    for (const auto& tok : tokenize(gen.spam_body())) {
      ++total;
      if (gen.is_spam_token(tok)) ++spam_tokens;
    }
  }
  const double frac = static_cast<double>(spam_tokens) /
                      static_cast<double>(total);
  EXPECT_NEAR(frac, 0.7, 0.05);
}

TEST(Corpus, NewsletterIsLightlyContaminated) {
  CorpusParams p;
  p.newsletter_spam_mix = 0.25;
  CorpusGenerator gen(p, zmail::Rng(3));
  std::size_t spam_tokens = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    for (const auto& tok : tokenize(gen.newsletter_body())) {
      ++total;
      if (gen.is_spam_token(tok)) ++spam_tokens;
    }
  }
  EXPECT_NEAR(static_cast<double>(spam_tokens) / static_cast<double>(total),
              0.25, 0.05);
}

TEST(Corpus, EvadeMutatesSpamTokensOnly) {
  CorpusGenerator gen(CorpusParams{}, zmail::Rng(4));
  const std::string ham = gen.ham_body();
  EXPECT_EQ(gen.evade(ham, 1.0), ham);  // nothing to obfuscate
  const std::string spam = gen.spam_body();
  const std::string evaded = gen.evade(spam, 1.0);
  EXPECT_NE(evaded, spam);
  // Obfuscated tokens no longer look like spam vocabulary to the filter's
  // tokenizer (a digit splits/changes the token).
  std::size_t surviving = 0;
  for (const auto& tok : tokenize(evaded))
    if (gen.is_spam_token(tok) && tok.find('0') == std::string::npos)
      ++surviving;
  EXPECT_EQ(surviving, 0u);
}

TEST(Corpus, EvadeStrengthZeroIsIdentity) {
  CorpusGenerator gen(CorpusParams{}, zmail::Rng(5));
  const std::string spam = gen.spam_body();
  EXPECT_EQ(gen.evade(spam, 0.0), spam);
}

TEST(Corpus, MakeMessageSetsClassAndTruth) {
  CorpusGenerator gen(CorpusParams{}, zmail::Rng(6));
  const net::EmailMessage m = gen.make_message(
      {"a", "x.example"}, {"b", "y.example"}, net::MailClass::kSpam);
  EXPECT_EQ(m.truth, net::MailClass::kSpam);
  EXPECT_FALSE(m.subject().empty());
  EXPECT_FALSE(m.body.empty());
}

// --- Traffic ----------------------------------------------------------------

core::ZmailParams traffic_params() {
  core::ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 10;
  p.initial_user_balance = 1'000;
  p.default_daily_limit = 10'000;
  return p;
}

TEST(Traffic, BurstDeliversMail) {
  core::ZmailSystem sys(traffic_params(), 11);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(12));
  TrafficGenerator gen(sys, TrafficParams{}, corpus, zmail::Rng(13));
  gen.build_contacts();
  gen.burst(100);
  sys.run_for(sim::kHour);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < 3; ++i)
    delivered += sys.isp(i).metrics().emails_delivered;
  EXPECT_EQ(delivered, 100u);
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(Traffic, ScheduleDaySpreadsEventsOverTheDay) {
  core::ZmailSystem sys(traffic_params(), 14);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(15));
  TrafficParams tp;
  tp.mean_sends_per_user_day = 4.0;
  TrafficGenerator gen(sys, tp, corpus, zmail::Rng(16));
  gen.build_contacts();
  const std::size_t scheduled = gen.schedule_day();
  EXPECT_GT(scheduled, 30u);  // 30 users * ~4
  // Nothing delivered yet.
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < 3; ++i)
    delivered += sys.isp(i).metrics().emails_delivered;
  EXPECT_EQ(delivered, 0u);
  sys.run_for(sim::kDay + sim::kHour);
  delivered = 0;
  for (std::size_t i = 0; i < 3; ++i)
    delivered += sys.isp(i).metrics().emails_delivered;
  EXPECT_EQ(delivered, scheduled);
}

TEST(Traffic, SpamCampaignCountsOutcomes) {
  core::ZmailParams p = traffic_params();
  p.initial_user_balance = 50;
  p.default_daily_limit = 200;
  core::ZmailSystem sys(p, 17);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(18));
  SpamCampaignParams cp;
  cp.messages = 300;
  zmail::Rng rng(19);
  const SpamCampaignResult r = run_spam_campaign(sys, cp, corpus, rng);
  EXPECT_EQ(r.attempted, 300u);
  // The spammer has 50 e-pennies (some sends are local/free-ish... local
  // still paid) — most of the campaign is refused for lack of balance.
  EXPECT_LE(r.sent, 60u);
  EXPECT_GT(r.refused_balance, 200u);
}

TEST(Traffic, CampaignLimitBlocksBeforeBalanceWhenLimitIsTight) {
  core::ZmailParams p = traffic_params();
  p.initial_user_balance = 10'000;
  p.default_daily_limit = 25;
  core::ZmailSystem sys(p, 20);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(21));
  SpamCampaignParams cp;
  cp.messages = 100;
  zmail::Rng rng(22);
  const SpamCampaignResult r = run_spam_campaign(sys, cp, corpus, rng);
  EXPECT_EQ(r.sent, 25u);
  EXPECT_EQ(r.refused_limit, 75u);
}

TEST(Traffic, DiurnalProfileConcentratesDaytimeSends) {
  core::ZmailSystem sys(traffic_params(), 51);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(52));
  TrafficParams tp;
  tp.mean_sends_per_user_day = 30.0;
  tp.diurnal = true;
  tp.diurnal_amplitude = 0.9;
  tp.peak_hour = 14.0;
  TrafficGenerator gen(sys, tp, corpus, zmail::Rng(53));
  gen.build_contacts();
  gen.schedule_day();

  // Count deliveries in the peak window (12:00-16:00) vs the trough
  // (00:00-04:00) by running the clock in slices.
  auto delivered_total = [&] {
    std::uint64_t d = 0;
    for (std::size_t i = 0; i < 3; ++i)
      d += sys.isp(i).metrics().emails_delivered;
    return d;
  };
  sys.run_for(4 * sim::kHour);
  const std::uint64_t trough = delivered_total();
  sys.run_for(8 * sim::kHour);  // through 12:00
  const std::uint64_t before_peak = delivered_total();
  sys.run_for(4 * sim::kHour);  // through 16:00
  const std::uint64_t after_peak = delivered_total();
  const std::uint64_t peak = after_peak - before_peak;
  EXPECT_GT(peak, 3 * std::max<std::uint64_t>(trough, 1));
}

TEST(Traffic, ZipfPopularityConcentratesReceipts) {
  core::ZmailParams p = traffic_params();
  p.users_per_isp = 50;
  core::ZmailSystem sys(p, 54);
  CorpusGenerator corpus(CorpusParams{}, zmail::Rng(55));
  TrafficParams tp;
  tp.zipf_popularity = 1.2;
  TrafficGenerator gen(sys, tp, corpus, zmail::Rng(56));
  gen.build_contacts();
  gen.burst(2'000);
  sys.run_for(2 * sim::kHour);

  // The top decile of user indices should receive the majority of mail.
  std::int64_t top_decile = 0, total = 0;
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    for (std::size_t u = 0; u < p.users_per_isp; ++u) {
      const auto received = sys.isp(i).user(u).lifetime_received_paid;
      total += received;
      if (u < p.users_per_isp / 10) top_decile += received;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total),
            0.5);
}

// --- Virus / zombies ----------------------------------------------------------

TEST(Virus, TightLimitContainsOutbreak) {
  core::ZmailParams p = traffic_params();
  p.users_per_isp = 20;
  p.default_daily_limit = 20;  // tight: a zombie is cut off quickly
  p.initial_user_balance = 10'000;
  core::ZmailSystem tight(p, 23);
  OutbreakParams op;
  op.initial_infected = 2;
  op.virus_sends_per_day = 500;
  op.infect_prob = 0.08;
  op.days = 8;
  ZombieOutbreak outbreak(tight, op, zmail::Rng(24));
  const auto days = outbreak.run();
  ASSERT_EQ(days.size(), 8u);
  // Each zombie is stopped at the limit: per-day accepted virus mail is
  // bounded by infected * limit.
  for (const auto& d : days)
    EXPECT_LE(d.virus_sent, static_cast<std::uint64_t>(d.infected + 2) * 20);
  // Warnings fired, and infections were disinfected along the way.
  std::uint64_t total_warnings = 0;
  for (const auto& d : days) total_warnings += d.warnings;
  EXPECT_GT(total_warnings, 0u);
}

TEST(Virus, LooseLimitLetsOutbreakSpendMore) {
  core::ZmailParams base = traffic_params();
  base.users_per_isp = 20;
  base.initial_user_balance = 10'000;

  auto drained_with_limit = [&](std::int64_t limit, std::uint64_t seed) {
    core::ZmailParams p = base;
    p.default_daily_limit = limit;
    core::ZmailSystem sys(p, seed);
    OutbreakParams op;
    op.initial_infected = 2;
    op.virus_sends_per_day = 300;
    op.infect_prob = 0.02;
    op.patch_prob_after_warning = 1.0;
    op.days = 5;
    ZombieOutbreak outbreak(sys, op, zmail::Rng(seed));
    return outbreak.run().back().epennies_drained;
  };

  EXPECT_LT(drained_with_limit(20, 31), drained_with_limit(5'000, 31) / 3);
}

}  // namespace
}  // namespace zmail::workload
