#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/log.hpp"

namespace zmail::telemetry {

namespace {

bool same_grid(const Series& a, const Series& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i)
    if (a.points[i].t_us != b.points[i].t_us) return false;
  return true;
}

// Gathers the series whose name is "isp<k>.<suffix>" within `scope`,
// keeping input order (already canonical after the caller's sort).
std::vector<const Series*> per_isp(const std::vector<Series>& all,
                                   const char* scope, const char* suffix) {
  std::vector<const Series*> out;
  const std::string suf = std::string(".") + suffix;
  for (const Series& s : all) {
    if (s.engine || s.scope != scope) continue;
    if (s.name.size() <= suf.size() + 3) continue;
    if (s.name.compare(0, 3, "isp") != 0) continue;
    if (s.name.compare(s.name.size() - suf.size(), suf.size(), suf) != 0)
      continue;
    out.push_back(&s);
  }
  return out;
}

// Point-wise sum over same-grid series.  Returns false (and logs) on a
// grid mismatch instead of guessing an alignment.
bool sum_points(const std::vector<const Series*>& parts,
                std::vector<Point>* out) {
  if (parts.empty()) return false;
  for (const Series* s : parts)
    if (!same_grid(*parts.front(), *s)) {
      ZMAIL_LOG(LogLevel::kDebug, "telemetry",
                "derived sum skipped: %s grid differs from %s",
                s->key().c_str(), parts.front()->key().c_str());
      return false;
    }
  out->assign(parts.front()->points.begin(), parts.front()->points.end());
  for (std::size_t k = 1; k < parts.size(); ++k)
    for (std::size_t i = 0; i < out->size(); ++i)
      (*out)[i].value += parts[k]->points[i].value;
  return true;
}

const Series* find_series(const std::vector<Series>& all,
                          const std::string& key) {
  for (const Series& s : all)
    if (s.key() == key) return &s;
  return nullptr;
}

// Every derivation skips when its output key already exists, so merging a
// CSV that was itself written post-merge (zmail_top's input) is a no-op.
void derive_sum(std::vector<Series>& all, const char* scope,
                const char* suffix, Kind kind, const std::string& out_name) {
  if (find_series(all, std::string(scope) + "." + out_name)) return;
  const auto parts = per_isp(all, scope, suffix);
  std::vector<Point> pts;
  if (!sum_points(parts, &pts)) return;
  all.push_back(Series{scope, out_name, kind, false, std::move(pts)});
}

void canonical_sort(std::vector<Series>& all) {
  std::sort(all.begin(), all.end(), [](const Series& a, const Series& b) {
    if (a.engine != b.engine) return !a.engine;
    if (a.scope != b.scope) return a.scope < b.scope;
    return a.name < b.name;
  });
}

void append_csv_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::vector<Series> merge_collected(std::vector<Series> all,
                                    const DeriveSpec& spec) {
  canonical_sort(all);

  // Mail-flow totals (point-wise sums of integer window deltas: exact and
  // grouping-independent).
  derive_sum(all, "core", "delivered", Kind::kRate, "total.delivered");
  derive_sum(all, "core", "blocked", Kind::kRate, "total.blocked");
  derive_sum(all, "core", "refused", Kind::kRate, "total.refused");
  derive_sum(all, "econ", "epennies_held", Kind::kGauge,
             "total.epennies_held");

  // Conservation gap: supply + endowment - holdings.  Positive = e-pennies
  // riding in-flight mail or unsettled trades; a climbing floor is a leak.
  if (spec.endowment_epennies >= 0.0 &&
      !find_series(all, "econ.total.conservation_gap")) {
    const Series* held = find_series(all, "econ.total.epennies_held");
    const Series* supply = find_series(all, "econ.bank.epenny_supply");
    if (held && supply && same_grid(*held, *supply)) {
      std::vector<Point> pts = supply->points;
      for (std::size_t i = 0; i < pts.size(); ++i)
        pts[i].value += spec.endowment_epennies - held->points[i].value;
      all.push_back(Series{"econ", "total.conservation_gap", Kind::kGauge,
                           false, std::move(pts)});
    }
  }

  // Market price: mean of the per-ISP effective stamp prices (fixed
  // divisor, canonical order — deterministic).
  if (!find_series(all, "econ.market.stamp_price_micros")) {
    const auto parts = per_isp(all, "econ", "stamp_price_micros");
    std::vector<Point> pts;
    if (sum_points(parts, &pts)) {
      const double n = static_cast<double>(parts.size());
      for (Point& p : pts) p.value /= n;
      all.push_back(Series{"econ", "market.stamp_price_micros", Kind::kGauge,
                           false, std::move(pts)});
    }
  }

  // Engine: busiest/idlest shard event-rate ratio, from the per-shard
  // "sim.shard<k>.events" rates (partition-dependent by nature).
  if (!find_series(all, "sim.shard_imbalance_ratio")) {
    std::vector<const Series*> shards;
    for (const Series& s : all)
      if (s.engine && s.scope == "sim" &&
          s.name.compare(0, 5, "shard") == 0 &&
          s.name.size() > 12 &&
          s.name.compare(s.name.size() - 7, 7, ".events") == 0)
        shards.push_back(&s);
    if (shards.size() >= 2) {
      bool grids_ok = true;
      for (const Series* s : shards)
        grids_ok = grids_ok && same_grid(*shards.front(), *s);
      if (grids_ok) {
        std::vector<Point> pts = shards.front()->points;
        for (std::size_t i = 0; i < pts.size(); ++i) {
          double lo = shards.front()->points[i].value;
          double hi = lo;
          for (const Series* s : shards) {
            lo = std::min(lo, s->points[i].value);
            hi = std::max(hi, s->points[i].value);
          }
          pts[i].value = lo > 0.0 ? hi / lo : (hi > 0.0 ? hi : 1.0);
        }
        all.push_back(Series{"sim", "shard_imbalance_ratio", Kind::kGauge,
                             true, std::move(pts)});
      }
    }
  }

  canonical_sort(all);
  return all;
}

std::vector<Series> merge_series(
    const std::vector<const TelemetryRegistry*>& registries,
    const DeriveSpec& spec) {
  std::vector<Series> all;
  for (const TelemetryRegistry* r : registries) {
    if (!r) continue;
    auto part = r->collect();
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return merge_collected(std::move(all), spec);
}

json::Value timeseries_json(const std::vector<Series>& series, bool engine) {
  json::Value j = json::Value::object();
  for (const Series& s : series) {
    if (s.engine != engine) continue;
    json::Value e = json::Value::object();
    e["kind"] = kind_name(s.kind);
    json::Value& pts = e["points"];
    pts = json::Value::array();
    for (const Point& p : s.points) {
      json::Value row = json::Value::array();
      row.push_back(p.t_us);
      if (s.kind == Kind::kHistogram) {
        row.push_back(p.count);
        row.push_back(p.sum);
        row.push_back(p.min);
        row.push_back(p.max);
        row.push_back(p.p50);
        row.push_back(p.p99);
      } else {
        row.push_back(p.value);
      }
      pts.push_back(std::move(row));
    }
    j[s.key()] = std::move(e);
  }
  return j;
}

std::string csv_string(const std::vector<Series>& series) {
  std::string out =
      "section,scope,series,kind,t_us,value,count,sum,min,max,p50,p99\n";
  for (const Series& s : series) {
    for (const Point& p : s.points) {
      out += s.engine ? "engine" : "world";
      out += ',';
      out += s.scope;
      out += ',';
      out += s.name;
      out += ',';
      out += kind_name(s.kind);
      out += ',';
      out += std::to_string(p.t_us);
      out += ',';
      append_csv_double(out, p.value);
      out += ',';
      out += std::to_string(p.count);
      out += ',';
      append_csv_double(out, p.sum);
      out += ',';
      append_csv_double(out, p.min);
      out += ',';
      append_csv_double(out, p.max);
      out += ',';
      append_csv_double(out, p.p50);
      out += ',';
      append_csv_double(out, p.p99);
      out += '\n';
    }
  }
  return out;
}

bool write_csv(const std::string& path, const std::vector<Series>& series,
               std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  f << csv_string(series);
  f.flush();
  if (!f) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool load_csv(const std::string& path, std::vector<Series>* out,
              std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  out->clear();
  std::string line;
  if (!std::getline(f, line) ||
      line.compare(0, 7, "section") != 0) {
    if (error) *error = "not a zmail telemetry CSV: " + path;
    return false;
  }
  std::map<std::string, std::size_t> index;  // key -> out slot
  std::size_t lineno = 1;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> cols;
    std::stringstream ss(line);
    std::string col;
    while (std::getline(ss, col, ',')) cols.push_back(col);
    if (cols.size() != 12) {
      if (error)
        *error = path + ":" + std::to_string(lineno) + ": expected 12 columns";
      return false;
    }
    Kind kind = Kind::kGauge;
    if (cols[3] == "rate") kind = Kind::kRate;
    else if (cols[3] == "histogram") kind = Kind::kHistogram;
    else if (cols[3] != "gauge") {
      if (error)
        *error = path + ":" + std::to_string(lineno) + ": bad kind " + cols[3];
      return false;
    }
    const std::string key = cols[0] + "/" + cols[1] + "." + cols[2];
    auto [it, inserted] = index.emplace(key, out->size());
    if (inserted)
      out->push_back(Series{cols[1], cols[2], kind, cols[0] == "engine", {}});
    Point p;
    p.t_us = std::strtoll(cols[4].c_str(), nullptr, 10);
    p.value = std::strtod(cols[5].c_str(), nullptr);
    p.count = std::strtoull(cols[6].c_str(), nullptr, 10);
    p.sum = std::strtod(cols[7].c_str(), nullptr);
    p.min = std::strtod(cols[8].c_str(), nullptr);
    p.max = std::strtod(cols[9].c_str(), nullptr);
    p.p50 = std::strtod(cols[10].c_str(), nullptr);
    p.p99 = std::strtod(cols[11].c_str(), nullptr);
    (*out)[it->second].points.push_back(p);
  }
  return true;
}

std::string prometheus_text(const std::vector<Series>& series) {
  std::string out;
  std::set<std::string> typed;
  for (const Series& s : series) {
    if (s.points.empty()) continue;
    // "isp3.delivered" -> metric zmail_core_delivered{entity="isp3"}.
    std::string entity, signal = s.name;
    const std::size_t dot = s.name.find('.');
    if (dot != std::string::npos) {
      entity = s.name.substr(0, dot);
      signal = s.name.substr(dot + 1);
    }
    std::string metric = "zmail_" + s.scope + "_" + signal;
    for (char& c : metric)
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
        c = '_';
    if (typed.insert(metric).second)
      out += "# TYPE " + metric + " gauge\n";
    std::string labels;
    if (!entity.empty()) labels = "entity=\"" + entity + "\"";
    if (s.engine) labels += (labels.empty() ? "" : ",") +
                            std::string("section=\"engine\"");
    const Point& p = s.points.back();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g",
                  s.kind == Kind::kHistogram ? p.p99 : p.value);
    out += metric;
    if (!labels.empty()) out += "{" + labels + "}";
    out += ' ';
    out += buf;
    out += ' ';
    out += std::to_string(p.t_us / 1000);  // prom timestamps are millis
    out += '\n';
  }
  return out;
}

bool write_prometheus(const std::string& path,
                      const std::vector<Series>& series, std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  f << prometheus_text(series);
  f.flush();
  if (!f) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace zmail::telemetry
