// Audit journal for the bank's monetary and verification events.
//
// A real clearing house keeps an immutable record of everything it mints,
// burns, settles, and disputes; this journal provides that for the
// simulated bank so experiments can be audited after the fact (and so the
// conservation invariants can be re-derived from the event stream alone,
// which core_audit_test does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/money.hpp"

namespace zmail::core {

enum class AuditKind : std::uint8_t {
  kMint = 0,           // buy accepted: e-pennies created (a = isp)
  kMintRejected,       // buy refused: insufficient account (a = isp)
  kBurn,               // sell: e-pennies destroyed (a = isp)
  kRoundStarted,       // snapshot round opened (amount = # requests)
  kReportReceived,     // credit report accepted (a = isp)
  kViolationFlagged,   // antisymmetry failure (a, b = pair; amount = diff)
  kSettlement,         // bulk transfer (a = payer, b = payee)
  kRoundCompleted,     // verification finished
  kEnvelopeRejected,   // malformed/tampered message dropped (a = isp)
  kStaleReport,        // replayed/out-of-round report ignored (a = isp)
};

const char* audit_kind_name(AuditKind k) noexcept;

struct AuditEvent {
  AuditKind kind;
  std::uint64_t seq = 0;     // billing period the event belongs to
  std::size_t a = 0;         // primary party (ISP index)
  std::size_t b = 0;         // secondary party, when applicable
  std::int64_t amount = 0;   // e-pennies (mint/burn/settle) or count

  std::string str() const;
};

class AuditJournal {
 public:
  void record(AuditEvent e) { events_.push_back(e); }

  const std::vector<AuditEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  std::uint64_t count(AuditKind kind) const noexcept;
  // Net e-pennies minted minus burned, re-derived from the journal.
  std::int64_t net_minted() const noexcept;
  // Sum of settlement amounts (absolute), for volume accounting.
  std::int64_t settlement_volume() const noexcept;

  // One line per event.
  std::string text() const;

 private:
  std::vector<AuditEvent> events_;
};

}  // namespace zmail::core
