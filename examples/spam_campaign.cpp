// A spammer's day, twice: once over plain SMTP (free ride) and once under
// Zmail (one e-penny per message).  Reproduces the paper's Section 1.2
// economics: the cost of spam rises by >= 2 orders of magnitude and the
// campaign flips from profitable to deeply unprofitable.
//
//   ./spam_campaign
#include <cstdio>

#include "core/system.hpp"
#include "econ/spammer.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

int main() {
  // --- The analytical view (campaign P&L per regime) -----------------------
  econ::Campaign campaign;
  campaign.messages = 1'000'000;
  campaign.response_rate = 1e-5;  // 10 sales per million messages
  campaign.revenue_per_response = Money::from_dollars(25);

  Table pnl({"regime", "cost/msg", "sending cost", "revenue", "profit",
             "break-even response rate"});
  for (const econ::SendingRegime& regime :
       {econ::smtp_regime(), econ::zmail_regime(),
        econ::zmail_partial_regime(0.5)}) {
    const econ::CampaignOutcome o = econ::evaluate(campaign, regime);
    pnl.add_row({regime.name, regime.cost_per_message.str(),
                 o.sending_cost.str(), o.revenue.str(), o.profit.str(),
                 Table::sci(econ::break_even_response_rate(campaign, regime))});
  }
  pnl.print("1M-message campaign, 1e-5 response rate, $25/sale");
  std::printf("\nbreak-even response rate ratio (zmail/smtp): %.0fx\n",
              econ::break_even_ratio(
                  {campaign.messages, campaign.response_rate,
                   campaign.revenue_per_response, Money::zero()}));

  // --- The simulated view: the spammer's e-pennies actually run out --------
  core::ZmailParams params;
  params.n_isps = 4;
  params.users_per_isp = 50;
  params.initial_user_balance = 100;   // spammer starts with $1 of e-pennies
  params.default_daily_limit = 10'000;
  core::ZmailSystem sys(params, 7);

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(8));
  workload::SpamCampaignParams cp;
  cp.messages = 5'000;
  Rng rng(9);
  const workload::SpamCampaignResult r =
      workload::run_spam_campaign(sys, cp, corpus, rng);
  sys.run_for(sim::kHour);

  Table sim_table({"metric", "value"});
  sim_table.add_row({"messages attempted", Table::num(std::uint64_t{r.attempted})});
  sim_table.add_row({"accepted (paid)", Table::num(std::uint64_t{r.sent})});
  sim_table.add_row({"refused: balance exhausted",
                     Table::num(std::uint64_t{r.refused_balance})});
  sim_table.add_row({"refused: daily limit",
                     Table::num(std::uint64_t{r.refused_limit})});
  sim_table.add_row({"spammer balance left",
                     Table::num(sys.isp(0).user(0).balance)});
  sim_table.print("simulated 5000-message blast with 100 e-pennies");

  std::printf("\nThe blast died after ~%llu messages: market forces, no spam "
              "definition needed.\n",
              static_cast<unsigned long long>(r.sent));
  return 0;
}
