// Human-readable rendering of Abstract-Protocol execution traces.
//
// With `scheduler.set_trace_enabled(true)`, every executed action is
// recorded; these helpers render the record as an annotated timeline —
// useful for debugging interleavings and for the protocol_trace example,
// which prints a full snapshot round step by step.
#pragma once

#include <string>

#include "ap/scheduler.hpp"

namespace zmail::ap {

// One line per trace entry:
//   "  42  isp1        rcv email            <- isp0"
std::string format_entry(const Scheduler& sched, const TraceEntry& entry);

// The whole trace (or its last `max_lines` entries when the trace is
// longer; 0 = unlimited).
std::string format_trace(const Scheduler& sched, std::size_t max_lines = 0);

// Per-(process, action) execution counts, rendered as a summary table —
// a quick fairness/activity profile of a run.
std::string format_action_counts(const Scheduler& sched);

}  // namespace zmail::ap
