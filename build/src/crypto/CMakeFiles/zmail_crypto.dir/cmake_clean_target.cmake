file(REMOVE_RECURSE
  "libzmail_crypto.a"
)
