#include "telemetry/registry.hpp"

#include <utility>

#include "telemetry/export.hpp"
#include "util/log.hpp"

namespace zmail::telemetry {

TelemetryRegistry::TelemetryRegistry(TelemetryConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.enabled = true;  // constructing the registry IS the opt-in
  if (cfg_.sample_period <= 0) cfg_.sample_period = sim::kMinute;
  if (cfg_.ring_capacity < 2) cfg_.ring_capacity = 2;
}

void TelemetryRegistry::add_gauge(std::string scope, std::string name,
                                  GaugeFn fn) {
  samplers_.push_back(Sampler{std::move(scope), std::move(name), Kind::kGauge,
                              false, std::move(fn), 0.0,
                              DownsamplingRing(Kind::kGauge, cfg_.ring_capacity)});
}

void TelemetryRegistry::add_rate(std::string scope, std::string name,
                                 CounterFn fn) {
  samplers_.push_back(Sampler{std::move(scope), std::move(name), Kind::kRate,
                              false, std::move(fn), 0.0,
                              DownsamplingRing(Kind::kRate, cfg_.ring_capacity)});
}

void TelemetryRegistry::add_engine_gauge(std::string scope, std::string name,
                                         GaugeFn fn) {
  samplers_.push_back(Sampler{std::move(scope), std::move(name), Kind::kGauge,
                              true, std::move(fn), 0.0,
                              DownsamplingRing(Kind::kGauge, cfg_.ring_capacity)});
}

void TelemetryRegistry::add_engine_rate(std::string scope, std::string name,
                                        CounterFn fn) {
  samplers_.push_back(Sampler{std::move(scope), std::move(name), Kind::kRate,
                              true, std::move(fn), 0.0,
                              DownsamplingRing(Kind::kRate, cfg_.ring_capacity)});
}

std::size_t TelemetryRegistry::add_histogram(std::string scope,
                                             std::string name, bool engine) {
  channels_.push_back(Channel{std::move(scope), std::move(name), engine,
                              LogHistogram{},
                              DownsamplingRing(Kind::kHistogram,
                                               cfg_.ring_capacity)});
  return channels_.size() - 1;
}

void TelemetryRegistry::observe(std::size_t channel,
                                std::uint64_t micros) noexcept {
  if (channel >= channels_.size()) return;  // kNoChannel and stale ids drop
  channels_[channel].hist.record(micros);
}

void TelemetryRegistry::sample(sim::SimTime now) {
  ++ticks_;
  for (Sampler& s : samplers_) {
    const double v = s.fn();
    Point p;
    p.t_us = now;
    if (s.kind == Kind::kRate) {
      p.value = v - s.last;
      s.last = v;
    } else {
      p.value = v;
    }
    s.ring.append(p);
  }
  for (Channel& c : channels_) {
    if (c.hist.empty()) continue;  // empty windows emit nothing
    c.ring.append(c.hist.flush(now));
  }
  if (!cfg_.prom_path.empty()) {
    std::string err;
    if (!write_prometheus(cfg_.prom_path, collect(), &err))
      ZMAIL_LOG(LogLevel::kWarn, "telemetry", "prometheus write failed: %s",
                err.c_str());
  }
}

std::vector<Series> TelemetryRegistry::collect() const {
  std::vector<Series> out;
  out.reserve(samplers_.size() + channels_.size());
  for (const Sampler& s : samplers_)
    out.push_back(Series{s.scope, s.name, s.kind, s.engine, s.ring.points()});
  for (const Channel& c : channels_)
    out.push_back(Series{c.scope, c.name, Kind::kHistogram, c.engine,
                         c.ring.points()});
  return out;
}

}  // namespace zmail::telemetry
