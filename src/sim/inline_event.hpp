// Allocation-free event callable for the simulator hot path.
//
// std::function<void()> heap-allocates for any capture larger than its
// (implementation-defined, typically 16-byte) small-buffer, which made every
// scheduled delivery a malloc/free pair.  InlineEvent fixes the inline
// storage at 48 bytes — enough for every closure the simulator and network
// schedule (a `this` pointer plus a few indices) — and falls back to the
// heap only for oversized or throwing-move captures, so correctness never
// depends on capture size.
//
// Move-only by design: events are executed exactly once and the queue never
// needs to copy them.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace zmail::sim {

class InlineEvent {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineEvent() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineEvent(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVt<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &kHeapVt<Fn>;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept { take(other); }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  // True when the callable lives in the inline buffer (no heap allocation).
  bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
    // Trivially copyable inline capture: relocation is a memcpy and
    // destruction a no-op, both done without the indirect call.  This is
    // the queue's common case ({object pointer, index} closures).
    bool trivial;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* as(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static constexpr VTable kInlineVt = {
      [](void* s) { (*as<Fn>(s))(); },
      [](void* dst, void* src) noexcept {
        Fn* f = as<Fn>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { as<Fn>(s)->~Fn(); },
      /*inline_storage=*/true,
      /*trivial=*/std::is_trivially_copyable_v<Fn>,
  };

  template <typename Fn>
  static constexpr VTable kHeapVt = {
      [](void* s) { (**as<Fn*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*as<Fn*>(src));
      },
      [](void* s) noexcept { delete *as<Fn*>(s); },
      /*inline_storage=*/false,
      /*trivial=*/false,
  };

  void take(InlineEvent& other) noexcept {
    if (other.vtable_ != nullptr) {
      if (other.vtable_->trivial)
        std::memcpy(storage_, other.storage_, kInlineSize);
      else
        other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace zmail::sim
