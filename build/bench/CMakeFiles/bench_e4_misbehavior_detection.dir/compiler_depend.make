# Empty compiler generated dependencies file for bench_e4_misbehavior_detection.
# This may be replaced when dependencies are built.
