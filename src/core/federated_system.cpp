#include "core/federated_system.hpp"

#include "core/telemetry_wiring.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace zmail::core {

namespace {
constexpr sim::Duration kQuiesceWindow = 10 * sim::kMinute;

// Inter-bank datagram types (interned once).  Index = FedMsg value - 1.
net::MsgType fed_msg_type(std::uint8_t kind) {
  static const net::MsgType kTypes[4] = {
      net::MsgType::intern("fed-columns"),
      net::MsgType::intern("fed-columns-ack"),
      net::MsgType::intern("fed-clearing"),
      net::MsgType::intern("fed-clearing-ack"),
  };
  ZMAIL_ASSERT(kind >= 1 && kind <= 4);
  return kTypes[kind - 1];
}

std::uint8_t fed_msg_kind(net::MsgType t) {
  for (std::uint8_t k = 1; k <= 4; ++k)
    if (t == fed_msg_type(k)) return k;
  return 0;
}
}  // namespace

FederatedZmailSystem::FederatedZmailSystem(ZmailParams params,
                                           std::size_t n_banks,
                                           std::uint64_t seed)
    : params_(std::move(params)),
      n_banks_(n_banks),
      rng_(seed),
      seed_(seed),
      sim_(),
      net_(sim_, Rng(seed ^ 0xFEDE7ULL), net::LatencyModel{}) {
  const auto problems = params_.validate();
  ZMAIL_ASSERT_MSG(problems.empty(),
                   problems.empty() ? "" : problems.front().c_str());
  ZMAIL_ASSERT_MSG(params_.compliant.empty(),
                   "FederatedZmailSystem models an all-compliant world");
  ZMAIL_ASSERT(n_banks_ >= 1);

  fed_ = std::make_unique<BankFederation>(params_, n_banks_, seed ^ 0xFE);

  isps_.resize(params_.n_isps);
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    isps_[i] = std::make_unique<Isp>(i, params_, fed_->public_key_for(i),
                                     seed * 0x2545F4914F6CDD1DULL + i);
    const net::HostId h = net_.add_host(
        net::isp_domain(i),
        [this, i](const net::Datagram& d) { on_isp_datagram(i, d); });
    ZMAIL_ASSERT(h == i);
  }
  for (std::size_t b = 0; b < n_banks_; ++b) {
    const net::HostId h = net_.add_host(
        "bank" + std::to_string(b) + ".example",
        [this, b](const net::Datagram& d) { on_bank_datagram(b, d); });
    ZMAIL_ASSERT(h == bank_host(b));
  }

  // Hardened mode: the inter-bank plane leaves the synchronous loopback
  // and becomes real datagrams between bank hosts.  Strictly additive —
  // with store and retry both off nothing below runs, so legacy callers
  // stay bit-identical.
  hardened_ = params_.store.enabled || params_.retry.enabled;
  if (hardened_) {
    fed_->set_interbank_sink([this](std::size_t from, std::size_t to,
                                    std::uint8_t kind, crypto::Bytes wire) {
      net_.send(bank_host(from), bank_host(to), fed_msg_type(kind),
                std::move(wire));
    });
  }

  if (params_.store.enabled) {
    std::string err;
    ZMAIL_ASSERT_MSG(store::ensure_dir(params_.store.dir, &err), err.c_str());
    stores_.resize(n_banks_);
    checkpointed_seq_.assign(n_banks_, 0);
    for (std::size_t b = 0; b < n_banks_; ++b) open_store(b);
    if (params_.store.checkpoint_interval_us > 0) {
      sim_.schedule_every(
          static_cast<sim::Duration>(params_.store.checkpoint_interval_us),
          [this] {
            checkpoint_all();
            return true;
          });
    }
  }

  if (params_.retry.enabled) {
    sim::Duration poll = params_.retry.base / 2;
    if (poll < 100 * sim::kMillisecond) poll = 100 * sim::kMillisecond;
    sim_.schedule_every(poll, [this] {
      poll_fault_recovery();
      return true;
    });
  }
}

SendOutcome FederatedZmailSystem::send_email(const net::EmailAddress& from,
                                             const net::EmailAddress& to,
                                             std::string subject,
                                             std::string body) {
  std::size_t fi = 0, fu = 0, ti = 0, tu = 0;
  ZMAIL_ASSERT(net::decode_user_address(from, fi, fu) &&
               net::decode_user_address(to, ti, tu));
  const SendResult r = isps_.at(fi)->user_send(fu, ti, tu,
                                               net::make_email(from, to,
                                                               std::move(subject),
                                                               std::move(body)));
  pump_isp(fi);
  return SendOutcome::from(r);
}

TradeOutcome FederatedZmailSystem::buy_epennies(const net::EmailAddress& user,
                                                EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u))
    return TradeOutcome{TradeResult::kBadAddress};
  const bool ok = isps_.at(i)->user_buy(u, n);
  pump_isp(i);
  return TradeOutcome{ok ? TradeResult::kAccepted : TradeResult::kRefused};
}

TradeOutcome FederatedZmailSystem::sell_epennies(const net::EmailAddress& user,
                                                 EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u))
    return TradeOutcome{TradeResult::kBadAddress};
  const bool ok = isps_.at(i)->user_sell(u, n);
  pump_isp(i);
  return TradeOutcome{ok ? TradeResult::kAccepted : TradeResult::kRefused};
}

void FederatedZmailSystem::enable_bank_trading(sim::Duration poll) {
  sim_.schedule_every(poll, [this] {
    for (std::size_t i = 0; i < isps_.size(); ++i) {
      isps_[i]->maybe_trade_with_bank(sim_.now());
      pump_isp(i);
    }
    return true;
  });
}

void FederatedZmailSystem::start_snapshot() {
  if (!hardened_) {
    auto requests = fed_->start_snapshot();
    if (requests.empty()) return;
    const sim::SimTime deadline = sim_.now() + kQuiesceWindow;
    for (auto& [isp_index, wire] : requests) {
      net_.send(bank_host(fed_->home_bank(isp_index)), isp_index, kMsgRequest,
                std::move(wire));
      sim_.schedule_at(deadline, [this, i = isp_index] {
        if (isps_[i]->in_quiesce()) {
          isps_[i]->on_quiesce_timeout();
          pump_isp(i);
        }
      });
    }
    return;
  }
  // Hardened: a round still in flight blocks a new one, and banks that are
  // down right now simply sit this round out — the recovery poll re-enrols
  // them (same seq) once they come back, and their peers' column wires
  // retransmit until then.
  if (fed_->round_open()) return;
  std::vector<std::pair<std::size_t, crypto::Bytes>> requests;
  for (std::size_t b = 0; b < n_banks_; ++b) {
    if (bank_down(b)) continue;
    auto r = fed_->start_snapshot_for(b);
    for (auto& rw : r) requests.emplace_back(std::move(rw));
  }
  if (requests.empty()) return;
  const sim::SimTime deadline = sim_.now() + kQuiesceWindow;
  snapshot_deadline_ = deadline;
  send_requests(std::move(requests), deadline);
}

void FederatedZmailSystem::enable_periodic_snapshots(sim::Duration period) {
  sim_.schedule_every(period, [this] {
    start_snapshot();
    return true;
  });
}

void FederatedZmailSystem::enable_telemetry(
    const telemetry::TelemetryConfig& cfg) {
  ZMAIL_ASSERT_MSG(!telemetry_, "telemetry already enabled");
  telemetry_ = std::make_unique<telemetry::TelemetryRegistry>(cfg);
  telemetry::TelemetryRegistry& t = *telemetry_;

  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    const std::string tag = "isp" + std::to_string(i);
    detail::register_isp_telemetry(
        t, tag, [this, i]() -> const Isp& { return *isps_[i]; });
  }

  // Federation-wide supply, named like the central bank's so the derived
  // conservation-gap series finds it in either topology.
  t.add_gauge("econ", "bank.epenny_supply", [this] {
    const FederationMetrics m = fed_->metrics();
    return static_cast<double>(m.epennies_minted - m.epennies_burned);
  });
  t.add_rate("econ", "fed.rounds", [this] {
    return static_cast<double>(fed_->metrics().rounds_completed);
  });
  t.add_rate("econ", "fed.clearing_transfers", [this] {
    return static_cast<double>(fed_->metrics().clearing_transfers);
  });
  t.add_rate("econ", "fed.violations", [this] {
    return static_cast<double>(fed_->metrics().violations_found);
  });
  t.add_rate("net", "fed.interbank_msgs", [this] {
    return static_cast<double>(fed_->metrics().interbank_messages);
  });
  t.add_rate("net", "fed.interbank_retries", [this] {
    return static_cast<double>(fed_->metrics().interbank_retries);
  });

  for (std::size_t b = 0; b < n_banks_; ++b) {
    const std::string tag = "bank" + std::to_string(b);
    t.add_gauge("econ", tag + ".clearing_position_micros", [this, b] {
      return static_cast<double>(fed_->clearing_position(b).micros());
    });
    if (const store::Checkpointer* cp = host_store(bank_host(b)))
      detail::register_store_telemetry(t, tag, cp);
  }

  // engine — this facade is single-process; the engine series keep the
  // shard0 naming so zmail_top's panels work unchanged.
  t.add_engine_gauge("sim", "shard0.event_backlog", [this] {
    return static_cast<double>(sim_.pending());
  });
  t.add_engine_rate("sim", "shard0.events", [this] {
    return static_cast<double>(sim_.events_executed());
  });
  t.add_engine_rate("net", "shard0.datagrams", [this] {
    return static_cast<double>(net_.datagrams_sent());
  });
  t.add_engine_rate("net", "shard0.bytes", [this] {
    return static_cast<double>(net_.bytes_sent());
  });

  sim_.schedule_every(telemetry_->config().sample_period, [this] {
    telemetry_->sample(sim_.now());
    return true;
  });
}

void FederatedZmailSystem::send_requests(
    std::vector<std::pair<std::size_t, crypto::Bytes>> requests,
    sim::SimTime deadline) {
  for (auto& [isp_index, wire] : requests) {
    net_.send(bank_host(fed_->home_bank(isp_index)), isp_index, kMsgRequest,
              std::move(wire));
    sim_.schedule_at(deadline, [this, i = isp_index] {
      if (isps_[i]->in_quiesce()) {
        isps_[i]->on_quiesce_timeout(sim_.now());
        pump_isp(i);
      }
    });
  }
}

bool FederatedZmailSystem::bank_down(std::size_t bank) const {
  return faults_ != nullptr &&
         faults_->down_until(sim_.now(), bank_host(bank)) > sim_.now();
}

void FederatedZmailSystem::poll_fault_recovery() {
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    isps_[i]->poll_retries(now);
    pump_isp(i);
  }
  // Retransmit unacked inter-bank wires whose backoff expired.
  for (std::size_t b = 0; b < n_banks_; ++b) {
    if (bank_down(b)) continue;
    fed_->poll_interbank(b, now);
    maybe_checkpoint(b);
  }
  if (!fed_->round_open()) return;
  // A recovered bank that missed the round opening (crashed across
  // start_snapshot, or WAL-lost its kStartRound) rejoins at the same seq;
  // its peers have been waiting on its columns all along.
  for (std::size_t b = 0; b < n_banks_; ++b) {
    if (bank_down(b) || fed_->round_open(b)) continue;
    if (fed_->seq(b) != fed_->seq()) continue;
    auto requests = fed_->start_snapshot_for(b);
    if (requests.empty()) continue;
    const sim::SimTime deadline = now + kQuiesceWindow;
    if (deadline > snapshot_deadline_) snapshot_deadline_ = deadline;
    send_requests(std::move(requests), deadline);
  }
  // Banks whose gather is still open past the deadline lost requests or
  // reports in transit: re-request every silent member and push the
  // deadline out a full window so re-requests back off.
  if (now < snapshot_deadline_) return;
  std::vector<std::pair<std::size_t, crypto::Bytes>> requests;
  for (std::size_t b = 0; b < n_banks_; ++b) {
    if (bank_down(b) || !fed_->round_open(b)) continue;
    auto r = fed_->resend_requests(b);
    for (auto& rw : r) requests.emplace_back(std::move(rw));
  }
  if (requests.empty()) return;
  const sim::SimTime deadline = now + kQuiesceWindow;
  snapshot_deadline_ = deadline;
  send_requests(std::move(requests), deadline);
}

// --- Faults & the durable store ---------------------------------------------

void FederatedZmailSystem::attach_faults(net::FaultInjector* injector) {
  faults_ = injector;
  net_.attach_faults(injector);
  if (!injector || stores_.empty()) return;
  // With the durable store on, each planned bank outage is a real crash:
  // the bank restarts with wiped memory and recovers from snapshot + WAL.
  for (const net::HostOutage& o : injector->plan().outages) {
    if (o.host < params_.n_isps) continue;  // ISPs keep in-memory state here
    const std::size_t b = o.host - params_.n_isps;
    if (b >= stores_.size() || !stores_[b]) continue;
    sim_.schedule_at(o.until, [this, h = o.host] { recover_host(h); });
  }
}

void FederatedZmailSystem::open_store(std::size_t bank) {
  auto cp = std::make_unique<store::Checkpointer>();
  std::string err;
  const std::string party = "bank" + std::to_string(bank);
  ZMAIL_ASSERT_MSG(cp->open(params_.store, party, &err), err.c_str());
  stores_[bank] = std::move(cp);
  // Recover-at-open: reopening an existing store directory resumes the
  // persisted shard; on a fresh directory neither callback fires.
  rebuild_from_store(bank);
}

void FederatedZmailSystem::maybe_checkpoint(std::size_t bank) {
  if (stores_.empty() || !params_.store.checkpoint_at_snapshot) return;
  // One checkpoint per closed round per bank (the round close is the
  // consistent cut worth persisting; mid-gather state rides in the WAL).
  if (fed_->round_open(bank)) return;
  if (fed_->seq(bank) <= checkpointed_seq_[bank]) return;
  checkpoint_host(bank_host(bank));
}

void FederatedZmailSystem::checkpoint_host(std::size_t host) {
  const std::size_t b = host - params_.n_isps;
  if (host < params_.n_isps || b >= stores_.size() || !stores_[b]) return;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  trace::SpanScope ckpt_span(trace::Ev::kCheckpoint, 0,
                             static_cast<std::uint16_t>(host));
  std::string err;
  const auto sim_us = static_cast<std::uint64_t>(sim_.now());
  ZMAIL_ASSERT_MSG(
      stores_[b]->checkpoint(fed_->serialize_state(b), sim_us, &err),
      err.c_str());
  checkpointed_seq_[b] = fed_->seq(b);
  ckpt_span.set_end_arg0(stores_[b]->stats().last_snapshot_bytes);
}

void FederatedZmailSystem::checkpoint_all() {
  for (std::size_t b = 0; b < stores_.size(); ++b)
    if (stores_[b]) checkpoint_host(bank_host(b));
}

void FederatedZmailSystem::crash_host(std::size_t host,
                                      sim::Duration down_for) {
  ZMAIL_ASSERT_MSG(!stores_.empty(), "crash_host requires params.store.enabled");
  ZMAIL_ASSERT_MSG(host >= params_.n_isps &&
                       host - params_.n_isps < stores_.size() &&
                       stores_[host - params_.n_isps] != nullptr,
                   "only bank hosts are durable in the federated facade");
  if (!faults_) {
    // An outage-only injector: empty rates draw no RNG per datagram, so
    // attaching it perturbs nothing but the crashed host's traffic.
    crash_faults_ = std::make_unique<net::FaultInjector>(net::FaultPlan{},
                                                         seed_ ^ 0xC4A5ULL);
    faults_ = crash_faults_.get();
    net_.attach_faults(faults_);
  }
  faults_->add_outage({host, sim_.now(), sim_.now() + down_for});
  sim_.schedule_at(sim_.now() + down_for,
                   [this, host] { recover_host(host); });
}

void FederatedZmailSystem::recover_host(std::size_t host) {
  const std::size_t b = host - params_.n_isps;
  ZMAIL_ASSERT(host >= params_.n_isps && b < stores_.size() &&
               stores_[b] != nullptr);
  // Process death first: whatever the WAL buffered but never synced is
  // gone (empty under the default group_commit_records = 1).
  stores_[b]->simulate_crash();
  rebuild_from_store(b);
  ++state_recoveries_;
  if (faults_) faults_->note_state_recovery();
}

void FederatedZmailSystem::rebuild_from_store(std::size_t bank) {
  store::Checkpointer* cp = stores_[bank].get();
  store::RecoveryStats rs;
  std::string err;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  // Span first, guard second: the guard's destructor runs before the
  // span's, so the kRecovery end still emits.  While the guard lives, WAL
  // replay can neither mint ids nor emit.
  trace::SpanScope recovery_span(trace::Ev::kRecovery, 0,
                                 static_cast<std::uint16_t>(bank_host(bank)));
  trace::ReplayGuard replay_guard;
  fed_->reset_bank(bank);
  const bool ok = cp->recover(
      [this, bank](const crypto::Bytes& s) {
        ZMAIL_ASSERT(fed_->restore_state(bank, s));
      },
      [this, bank](std::uint8_t t, const crypto::Bytes& p) {
        fed_->apply_wal_record(bank, t, p);
      },
      &rs, &err);
  ZMAIL_ASSERT_MSG(ok, err.c_str());
  fed_->attach_wal(bank, &cp->wal());
  recovery_span.set_end_arg0(rs.wal_records_replayed);
}

FederatedZmailSystem::StoreTotals FederatedZmailSystem::store_totals() const {
  StoreTotals t;
  for (const auto& cp : stores_) {
    if (!cp) continue;
    const store::Checkpointer::Stats& cs = cp->stats();
    t.checkpoints += cs.checkpoints;
    t.snapshot_bytes += cs.last_snapshot_bytes;
    t.wal_records_truncated += cs.wal_records_truncated;
    const store::WalWriter::Stats& ws = cp->wal().stats();
    t.wal_records_appended += ws.records_appended;
    t.wal_bytes_appended += ws.bytes_appended;
    t.wal_syncs += ws.syncs;
    t.wal_fsyncs += ws.fsyncs;
  }
  return t;
}

void FederatedZmailSystem::run_for(sim::Duration d) {
  sim_.run(sim_.now() + d);
}

void FederatedZmailSystem::pump_isp(std::size_t i) {
  for (Outbound& o : isps_[i]->take_outbox()) {
    if (o.dest == Outbound::Dest::kBank) {
      net_.send(i, bank_host(fed_->home_bank(i)), std::move(o.type),
                std::move(o.payload));
      continue;
    }
    if (o.type == kMsgEmail) in_flight_paid_ += 1;
    net_.send(i, o.isp_index, std::move(o.type), std::move(o.payload));
  }
}

void FederatedZmailSystem::on_isp_datagram(std::size_t isp_index,
                                           const net::Datagram& d) {
  Isp& isp = *isps_.at(isp_index);
  if (d.type == kMsgEmail) {
    in_flight_paid_ -= 1;
    isp.on_email(d.from, d.payload);
  } else if (d.type == kMsgBuyReply) {
    isp.on_buyreply(d.payload);
  } else if (d.type == kMsgSellReply) {
    isp.on_sellreply(d.payload);
  } else if (d.type == kMsgRequest) {
    isp.on_request(d.payload);
  }
  pump_isp(isp_index);
}

void FederatedZmailSystem::on_bank_datagram(std::size_t bank_index,
                                            const net::Datagram& d) {
  const std::size_t g = d.from;
  if (g >= params_.n_isps) {
    // Inter-bank plane (hardened mode only: loopback wires never touch
    // the network).
    const std::size_t from_bank = g - params_.n_isps;
    const std::uint8_t kind = fed_msg_kind(d.type);
    if (kind != 0 && from_bank < n_banks_) {
      fed_->on_interbank(bank_index, from_bank, kind, d.payload);
      maybe_checkpoint(bank_index);
    }
    return;
  }
  ZMAIL_ASSERT_MSG(fed_->home_bank(g) == bank_index,
                   "ISP contacted a foreign bank");
  if (d.type == kMsgBuy) {
    crypto::Bytes reply = fed_->on_buy(g, d.payload);
    if (!reply.empty())
      net_.send(bank_host(bank_index), g, kMsgBuyReply, std::move(reply));
  } else if (d.type == kMsgSell) {
    crypto::Bytes reply = fed_->on_sell(g, d.payload);
    if (!reply.empty())
      net_.send(bank_host(bank_index), g, kMsgSellReply, std::move(reply));
  } else if (d.type == kMsgReply) {
    fed_->on_reply(g, d.payload);
    maybe_checkpoint(bank_index);
  }
}

std::uint64_t FederatedZmailSystem::bank_host_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n_banks_; ++b)
    total += net_.bytes_sent_to(bank_host(b));
  return total;
}

IspMetrics FederatedZmailSystem::total_isp_metrics() const {
  IspMetrics total;
  for (const auto& isp : isps_) total.merge(isp->metrics());
  return total;
}

EPenny FederatedZmailSystem::total_epennies() const {
  EPenny total = in_flight_paid_;
  for (const auto& isp : isps_)
    total += isp->epennies_held() + isp->buffered_paid();
  return total;
}

Money FederatedZmailSystem::total_real_money() const {
  Money total = Money::zero();
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    total += fed_->isp_account(i);
    total += isps_[i]->till();
    for (const Money a : isps_[i]->users().accounts()) total += a;
  }
  return total;
}

bool FederatedZmailSystem::conservation_holds() const {
  const EPenny initial =
      static_cast<EPenny>(params_.n_isps) *
      (params_.initial_avail +
       static_cast<EPenny>(params_.users_per_isp) *
           params_.initial_user_balance);
  const EPenny outstanding = fed_->metrics().epennies_minted -
                             fed_->metrics().epennies_burned;
  return total_epennies() == initial + outstanding;
}

}  // namespace zmail::core
