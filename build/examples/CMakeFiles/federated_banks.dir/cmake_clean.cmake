file(REMOVE_RECURSE
  "CMakeFiles/federated_banks.dir/federated_banks.cpp.o"
  "CMakeFiles/federated_banks.dir/federated_banks.cpp.o.d"
  "federated_banks"
  "federated_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
