// Microbenchmarks for the mail substrate: SMTP dialogues, message
// serialization, address parsing.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "net/smtp.hpp"

using namespace zmail;

namespace {

net::EmailMessage sample_message(std::size_t body_size) {
  return net::make_email(*net::parse_address("u1@isp0.example"),
                         *net::parse_address("u2@isp1.example"),
                         "benchmark message", std::string(body_size, 'x'));
}

void BM_SmtpTransfer(benchmark::State& state) {
  const net::EmailMessage msg =
      sample_message(static_cast<std::size_t>(state.range(0)));
  std::uint64_t delivered = 0;
  net::SmtpServerSession session(
      "isp1.example", [&delivered](const net::EmailMessage&) { ++delivered; });
  for (auto _ : state)
    benchmark::DoNotOptimize(net::smtp_transfer(msg, "isp0.example", session));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SmtpTransfer)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EmailSerialize(benchmark::State& state) {
  const net::EmailMessage msg =
      sample_message(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(msg.serialize());
}
BENCHMARK(BM_EmailSerialize)->Arg(100)->Arg(10000);

void BM_EmailDeserialize(benchmark::State& state) {
  const crypto::Bytes wire =
      sample_message(static_cast<std::size_t>(state.range(0))).serialize();
  for (auto _ : state)
    benchmark::DoNotOptimize(net::EmailMessage::deserialize(wire));
}
BENCHMARK(BM_EmailDeserialize)->Arg(100)->Arg(10000);

void BM_AddressParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(net::parse_address("user.name+tag@isp42.example"));
}
BENCHMARK(BM_AddressParse);

void BM_Rfc822Render(benchmark::State& state) {
  const net::EmailMessage msg = sample_message(2000);
  for (auto _ : state) benchmark::DoNotOptimize(msg.to_rfc822());
}
BENCHMARK(BM_Rfc822Render);

}  // namespace

int main(int argc, char** argv) {
  zmail::bench::Bench harness("micro_smtp", argc, argv);
  return zmail::bench::run_micro(harness, argc, argv);
}
