// Discrete-event simulator: timestamped callbacks behind a calendar queue.
//
// The AP scheduler models *untimed* nondeterministic interleaving (good for
// protocol safety properties); this simulator models *timed* behaviour —
// network latency, the 10-minute snapshot quiesce of Section 4.4, daily
// `sent` resets, monthly reconciliation — for the quantitative experiments.
//
// Hot-path layout (see DESIGN.md "Hot path"):
//   - events are InlineEvent (48-byte inline storage, heap fallback), so
//     scheduling a delivery allocates nothing;
//   - the queue is a two-level calendar queue: a wheel of fixed-width
//     buckets covering the near future plus an overflow heap for far-out
//     events (daily resets, monthly reconciliation).  Inserting into a
//     bucket is a plain push_back — no comparisons, no event relocations —
//     and a bucket is sorted exactly once, through a small POD key array,
//     when the drain cursor reaches it.  Buckets partition time, so
//     draining them in order yields the global (at, seq) minimum —
//     bit-identical event order to the old single priority queue, which the
//     E12.d 1-vs-N sweep identity check guards end to end.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace zmail::sim {

class Simulator {
 public:
  using EventFn = InlineEvent;

  SimTime now() const noexcept { return now_; }

  // Schedule `fn` to run at absolute time `at` (>= now).  Ties break in
  // insertion order, so the run is deterministic.
  void schedule_at(SimTime at, EventFn fn);
  // Schedule `fn` after a relative delay (>= 0).
  void schedule_after(Duration delay, EventFn fn);

  // Schedule `fn` every `period` (> 0), starting at `first` (defaults to
  // one period from now).  The task repeats while `fn` returns true.
  void schedule_every(Duration period, std::function<bool()> fn,
                      std::optional<SimTime> first = std::nullopt);

  // Run until the queue drains or `until` (inclusive) is passed.
  // Returns the number of events executed.
  std::uint64_t run(SimTime until = INT64_MAX);

  // Execute exactly one event; returns false if the queue is empty or the
  // next event is after `until`.
  bool step(SimTime until = INT64_MAX);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t events_executed() const noexcept { return executed_; }

  // Timestamp of the earliest pending event, or INT64_MAX when the queue is
  // empty.  The sharded engine uses this to size conservative windows and to
  // jump idle gaps with a schedule that depends only on world state.
  SimTime next_event_at() {
    const Entry* top = queue_.peek();
    return top ? top->at : INT64_MAX;
  }

  // Times the wheel was re-anchored (idle jumps, far-future drains).  A
  // rebase is where a clock-skew bug would silently reorder events, so the
  // count is surfaced as an obs counter (`calendar_rebase_count`) and the
  // drain path asserts monotonicity on every pop.
  std::uint64_t calendar_rebases() const noexcept {
    return queue_.rebase_count();
  }

  // Force the clock forward to `t` (>= now) without executing anything.
  // Used by the sharded engine to close a window whose events all landed
  // earlier than the barrier, so cross-shard messages scheduled afterwards
  // are stamped relative to the window edge, never before it.
  void advance_to(SimTime t) {
    ZMAIL_ASSERT_MSG(t >= now_, "cannot move the clock backwards");
    now_ = t;
  }

 private:
  struct RecurringTask {
    Duration period;
    std::function<bool()> fn;
  };
  void run_recurring(const std::shared_ptr<RecurringTask>& task);

  struct Entry {
    Entry(SimTime a, std::uint64_t s, EventFn f) noexcept
        : at(a), seq(s), fn(std::move(f)) {}

    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  // Heap comparator: std::*_heap build a max-heap, so "greater" yields a
  // min-heap on (at, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  // Two-level calendar queue.  Level 1: `kBuckets` buckets of `kWidth`
  // covering [base, base + kSpan); level 2: an overflow heap for everything
  // at or beyond base + kSpan.  When the wheel drains it is re-based onto
  // the earliest overflow event and eligible events migrate in.
  //
  // Buckets are unsorted vectors; the entries of the bucket under the drain
  // cursor are ordered through `order_`, a sorted array of {at, seq, index}
  // PODs, built once per bucket.  Popped entries leave a moved-from husk in
  // the bucket (skipped when (re)building the order) so no erase/compact
  // pass ever touches live events.
  class CalendarQueue {
   public:
    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }

    // Components are passed through to one emplace into the destination
    // vector, so a schedule costs a single event relocation.
    void push(SimTime at, std::uint64_t seq, EventFn&& fn);
    // Earliest (at, seq) entry, or nullptr when empty.  May advance the
    // bucket cursor / re-base the wheel, hence non-const.
    const Entry* peek();
    // Remove and return the earliest entry; requires !empty().
    Entry pop();

    std::uint64_t rebase_count() const noexcept { return rebases_; }

   private:
    static constexpr std::size_t kBuckets = 256;
    static constexpr SimTime kWidth = kMillisecond;  // per-bucket time slice
    static constexpr SimTime kSpan = static_cast<SimTime>(kBuckets) * kWidth;

    // Drain order of one bucket, sorted without moving the entries.
    struct OrderKey {
      SimTime at;
      std::uint64_t seq;
      std::uint32_t idx;  // position in the bucket vector
    };

    // Overflow-safe "at falls inside the wheel" (base_ may sit near the
    // far end of SimTime).
    bool in_wheel(SimTime at) const noexcept {
      return at >= base_ && at - base_ < kSpan;
    }
    std::size_t bucket_index(SimTime at) const noexcept {
      return static_cast<std::size_t>((at - base_) / kWidth);
    }
    void insert_wheel(SimTime at, std::uint64_t seq, EventFn&& fn);
    // Build `order_` for the cursor bucket, skipping popped husks.
    void sort_bucket();
    // Re-anchor the wheel so `t` falls in bucket 0 and migrate newly
    // eligible overflow events in.
    void rebase(SimTime t);

    std::vector<std::vector<Entry>> buckets_{kBuckets};
    std::vector<OrderKey> order_;  // drain order of buckets_[cursor_]
    std::size_t pos_ = 0;          // next undrained index into order_
    bool sorted_ = false;          // order_ currently describes cursor_
    std::vector<Entry> overflow_;  // min-heap under Later
    SimTime base_ = 0;
    std::size_t cursor_ = 0;        // first possibly non-empty bucket
    std::size_t wheel_count_ = 0;   // live entries in the wheel
    std::size_t size_ = 0;
    std::uint64_t rebases_ = 0;
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  CalendarQueue queue_;
};

}  // namespace zmail::sim
