# Empty dependencies file for bench_micro_baselines.
# This may be replaced when dependencies are built.
