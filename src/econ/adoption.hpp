// Incremental-deployment dynamics (paper Section 5, "Incremental
// Deployment").
//
// "It can be bootstrapped with as few as two compliant ISPs ... The good
//  experience of the users of compliant ISPs will attract more people to
//  switch to compliant ISPs and more ISPs will therefore become compliant.
//  Eventually, we envision that Zmail will spread over the Internet."
//
// The model: a population of ISPs, each with a user base.  Per step,
// users experience spam (spammers avoid paying, so spam flows freely only
// between/into non-compliant ISPs once compliant users segregate or discard
// unpaid mail); users migrate toward whichever side offers higher utility;
// an ISP flips compliant when enough of its users have defected or its
// relative utility gap crosses a threshold.  The paper predicts positive
// feedback: adoption accelerates as the compliant share grows.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace zmail::econ {

struct AdoptionParams {
  std::size_t n_isps = 50;
  double users_per_isp = 1e5;

  // Baseline spam experienced by a non-compliant user (messages/day).
  double spam_per_user_day = 10.0;
  // Fraction of that spam a compliant user still sees (paid spam, or mail
  // from non-compliant ISPs that passed the filter/segregation policy).
  double residual_spam_fraction = 0.05;
  // Utility penalty per spam message per day (attention cost).
  double utility_per_spam = 0.1;
  // Inter-ISP friction: inertia against switching providers.
  double switch_rate = 0.02;
  // A non-compliant ISP flips when it has lost this fraction of its users.
  double flip_threshold = 0.25;
  // Additional penalty for a compliant user: mail from the non-compliant
  // world is degraded (segregated/discarded), scaled by its share.
  double reachability_weight = 0.3;

  std::size_t initial_compliant = 2;  // the paper's bootstrap
  std::size_t steps = 200;            // simulation steps ("weeks")
};

struct AdoptionStep {
  std::size_t step = 0;
  std::size_t compliant_isps = 0;
  double compliant_user_share = 0.0;  // fraction of all users on compliant ISPs
  double avg_spam_compliant = 0.0;    // spam/day seen by a compliant user
  double avg_spam_noncompliant = 0.0;
};

// Runs the dynamics and returns one row per step (including step 0).
std::vector<AdoptionStep> simulate_adoption(const AdoptionParams& p,
                                            zmail::Rng& rng);

// Convenience: first step at which the compliant user share exceeds `share`
// (returns steps+1 when never reached).
std::size_t steps_to_share(const std::vector<AdoptionStep>& trace,
                           double share);

}  // namespace zmail::econ
