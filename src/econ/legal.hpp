// Legal-approach baseline (paper Section 2.1).
//
// The paper argues legal approaches fail for two reasons: spam is hard to
// define tightly enough to regulate, and "spammers can simply move their
// operations to a country that has no anti-spam laws" — per the Sophos
// figures it cites, 57.47% of spam already originated outside the U.S. in
// August 2004, and the FTC concluded a National Do-Not-Email Registry
// "would fail to reduce the amount of spam consumers receive, might
// increase it, and could not be enforced effectively."
//
// The model: spammers are distributed over jurisdictions; a law covers some
// jurisdictions with some enforcement probability; covered spammers either
// comply, risk the penalty, or relocate offshore at a one-time cost.  The
// output is the fraction of spam actually suppressed — and the registry
// variant adds the FTC's harvesting worry (the registry doubles as a list
// of live addresses for non-compliant spammers).
#pragma once

#include <cstdint>

#include "util/money.hpp"
#include "util/rng.hpp"

namespace zmail::econ {

struct LegalParams {
  // Fraction of spam volume originating inside covered jurisdictions
  // (paper-cited Sophos figure: 1 - 0.5747 for a U.S.-only law).
  double covered_origin_share = 1.0 - 0.5747;
  // Probability a covered spammer is caught and fined per campaign.
  double enforcement_prob = 0.05;
  Money fine = Money::from_dollars(10'000);
  // One-time cost of relocating operations offshore.
  Money relocation_cost = Money::from_dollars(5'000);
  // Expected profit per campaign for a covered spammer (SMTP economics).
  Money campaign_profit = Money::from_dollars(2'000);
  std::uint64_t campaigns_per_year = 50;

  // Registry variant: fraction of registry addresses that leak to
  // non-compliant spammers as a verified-live list (the FTC's worry).
  bool registry = false;
  double registry_leak_boost = 0.10;  // extra spam to registered addresses
};

struct LegalOutcome {
  double spam_suppressed = 0.0;   // fraction of total spam volume removed
  double spam_change = 0.0;       // net change (negative = reduction);
                                  // registry leakage can make it positive
  double covered_compliance = 0.0;  // covered spammers who actually stop
  double relocated = 0.0;           // covered spammers who move offshore
};

// Closed-form expected-value analysis of one legal regime.
LegalOutcome evaluate_legal(const LegalParams& p) noexcept;

}  // namespace zmail::econ
