// Email-virus / zombie propagation model (paper Section 5).
//
// "A virus can allow a user's PC to be exploited without the user's consent
//  or even knowledge ... it could be used to send out large amounts of spam
//  at the user's expense."
//
// Infected users attempt a burst of virus mail per day; each delivered
// virus message infects its (unpatched) recipient with some probability.
// Under Zmail the per-user daily limit caps the burst, bounds the victim's
// liability, and generates detection signals (the warning message); under
// plain SMTP the burst is unbounded.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "util/rng.hpp"

namespace zmail::workload {

struct OutbreakParams {
  std::size_t initial_infected = 1;
  double infect_prob = 0.05;        // per delivered virus message
  std::size_t virus_sends_per_day = 500;  // what the zombie *tries* to send
  double patch_prob_after_warning = 0.9;  // user disinfects after warning
  std::size_t days = 14;
};

struct OutbreakDay {
  std::size_t day = 0;
  std::size_t infected = 0;
  std::uint64_t virus_sent = 0;        // accepted by ISPs this day
  std::uint64_t virus_blocked = 0;     // stopped by the daily limit
  std::uint64_t warnings = 0;          // zombie warnings issued this day
  std::int64_t epennies_drained = 0;   // victims' cumulative e-penny loss
};

class ZombieOutbreak {
 public:
  ZombieOutbreak(core::ZmailSystem& system, const OutbreakParams& params,
                 zmail::Rng rng);

  // Runs the outbreak day by day (advancing the system clock) and returns
  // one row per day.
  std::vector<OutbreakDay> run();

  std::size_t peak_infected() const noexcept { return peak_infected_; }

 private:
  bool infected(std::size_t isp, std::size_t user) const;
  void infect(std::size_t isp, std::size_t user);
  void disinfect(std::size_t isp, std::size_t user);

  core::ZmailSystem& system_;
  OutbreakParams params_;
  zmail::Rng rng_;
  std::vector<std::vector<bool>> infected_;
  std::size_t infected_count_ = 0;
  std::size_t peak_infected_ = 0;
};

}  // namespace zmail::workload
