#include "net/email.hpp"

#include <cctype>

namespace zmail::net {

std::string_view mail_class_name(MailClass c) noexcept {
  switch (c) {
    case MailClass::kLegitimate: return "legitimate";
    case MailClass::kSpam: return "spam";
    case MailClass::kNewsletter: return "newsletter";
    case MailClass::kMailingList: return "mailing-list";
    case MailClass::kAcknowledgment: return "acknowledgment";
    case MailClass::kVirus: return "virus";
  }
  return "?";
}

namespace {
bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}
}  // namespace

std::optional<std::string> EmailMessage::header(std::string_view name) const {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return v;
  return std::nullopt;
}

void EmailMessage::set_header(std::string_view name, std::string_view value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = std::string(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::string(value));
}

std::size_t EmailMessage::wire_size() const noexcept {
  std::size_t n = from.str().size() + 16;
  for (const auto& r : to) n += r.str().size() + 12;
  for (const auto& [k, v] : headers) n += k.size() + v.size() + 4;
  n += body.size() + 8;
  return n;
}

std::string EmailMessage::to_rfc822() const {
  std::string out;
  out += "From: " + from.str() + "\r\n";
  std::string tos;
  for (std::size_t i = 0; i < to.size(); ++i) {
    if (i) tos += ", ";
    tos += to[i].str();
  }
  out += "To: " + tos + "\r\n";
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

crypto::Bytes EmailMessage::serialize() const {
  crypto::Bytes b;
  crypto::put_string(b, from.str());
  crypto::put_u32(b, static_cast<std::uint32_t>(to.size()));
  for (const auto& r : to) crypto::put_string(b, r.str());
  crypto::put_u32(b, static_cast<std::uint32_t>(headers.size()));
  for (const auto& [k, v] : headers) {
    crypto::put_string(b, k);
    crypto::put_string(b, v);
  }
  crypto::put_string(b, body);
  crypto::put_u8(b, static_cast<std::uint8_t>(truth));
  // Optional tail: present only for traced messages, so that runs with
  // tracing off serialize exactly as they did before tracing existed.
  if (trace_id != 0) crypto::put_u64(b, trace_id);
  return b;
}

std::optional<EmailMessage> EmailMessage::deserialize(
    const crypto::Bytes& wire) {
  crypto::ByteReader r(wire);
  EmailMessage m;
  auto from = parse_address(r.get_string());
  if (!from) return std::nullopt;
  m.from = *from;
  const std::uint32_t nto = r.get_u32();
  for (std::uint32_t i = 0; i < nto && r.ok(); ++i) {
    auto a = parse_address(r.get_string());
    if (!a) return std::nullopt;
    m.to.push_back(*a);
  }
  const std::uint32_t nh = r.get_u32();
  for (std::uint32_t i = 0; i < nh && r.ok(); ++i) {
    std::string k = r.get_string();
    std::string v = r.get_string();
    m.headers.emplace_back(std::move(k), std::move(v));
  }
  m.body = r.get_string();
  const std::uint8_t truth = r.get_u8();
  // A flipped bit must not smuggle an out-of-range enum into the system.
  if (truth > static_cast<std::uint8_t>(MailClass::kVirus)) return std::nullopt;
  m.truth = static_cast<MailClass>(truth);
  if (!r.ok()) return std::nullopt;
  if (!r.at_end()) m.trace_id = r.get_u64();
  if (!r.ok()) return std::nullopt;
  return m;
}

EmailMessage make_email(const EmailAddress& from, const EmailAddress& to,
                        std::string subject, std::string body,
                        MailClass truth) {
  EmailMessage m;
  m.from = from;
  m.to.push_back(to);
  m.set_header("Subject", subject);
  m.set_header("Message-ID",
               "<" + std::to_string(std::hash<std::string>{}(
                         from.str() + to.str() + subject + body)) +
                   "@" + from.domain + ">");
  m.body = std::move(body);
  m.truth = truth;
  return m;
}

}  // namespace zmail::net
