// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests inside the NCR/DCR hybrid envelope, for the PRF
// behind the paper's NNC nonce function, and for the hashcash proof-of-work
// baseline (Section 2.3's computational-cost approaches).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/bytes.hpp"

namespace zmail::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() noexcept;

  Sha256& update(const std::uint8_t* data, std::size_t len) noexcept;
  Sha256& update(const Bytes& b) noexcept {
    return update(b.data(), b.size());
  }
  Sha256& update(std::string_view s) noexcept {
    return update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  // Finalize; the object must not be updated afterwards.
  Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// One-shot helpers.
Digest sha256(const Bytes& data) noexcept;
Digest sha256(std::string_view data) noexcept;
std::string digest_hex(const Digest& d);

// Number of leading zero bits in a digest (hashcash difficulty check).
int leading_zero_bits(const Digest& d) noexcept;

}  // namespace zmail::crypto
