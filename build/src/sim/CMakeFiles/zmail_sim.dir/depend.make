# Empty dependencies file for zmail_sim.
# This may be replaced when dependencies are built.
