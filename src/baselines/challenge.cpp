#include "baselines/challenge.hpp"

namespace zmail::baselines {

bool ChallengeResponse::process(const net::EmailAddress& sender,
                                bool truth_spam) {
  const std::string key = sender.str();
  if (whitelist_.count(key)) {
    ++stats_.delivered_whitelisted;
    if (truth_spam) ++stats_.spam_delivered;  // forged whitelisted identity
    return true;
  }

  ++stats_.challenges_issued;
  if (truth_spam) {
    if (rng_.bernoulli(params_.spammer_solve_prob)) {
      whitelist_.insert(key);
      ++stats_.spam_delivered;
      stats_.total_latency_seconds += params_.held_latency_seconds;
      return true;
    }
    ++stats_.spam_blocked;
    return false;
  }

  // Legitimate sender: answers with some probability, at a human cost.
  if (rng_.bernoulli(params_.human_response_prob)) {
    whitelist_.insert(key);
    ++stats_.delivered_after_challenge;
    stats_.human_seconds += params_.human_seconds_per_challenge;
    stats_.total_latency_seconds += params_.held_latency_seconds;
    return true;
  }
  ++stats_.lost_no_response;
  return false;
}

}  // namespace zmail::baselines
