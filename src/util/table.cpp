#include "util/table.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"

namespace zmail {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ZMAIL_ASSERT(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  ZMAIL_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > w[c]) w[c] = row[c].size();

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(w[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(w[c] + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += esc(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += esc(row[c]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::sparkline(const std::vector<double>& values,
                             std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty() || width == 0) return "";

  // Bucket-average down to at most `width` cells.
  std::vector<double> cells;
  const std::size_t n = values.size();
  if (n <= width) {
    cells = values;
  } else {
    cells.resize(width);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t lo = c * n / width;
      std::size_t hi = (c + 1) * n / width;
      if (hi <= lo) hi = lo + 1;
      double sum = 0.0;
      for (std::size_t i = lo; i < hi; ++i) sum += values[i];
      cells[c] = sum / static_cast<double>(hi - lo);
    }
  }

  double mn = cells[0], mx = cells[0];
  for (double v : cells) {
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  const double span = mx - mn;
  std::string out;
  for (double v : cells) {
    const std::size_t level =
        span > 0.0 ? static_cast<std::size_t>((v - mn) / span * 7.0 + 0.5)
                   : 0;
    out += kBlocks[level < 8 ? level : 7];
  }
  return out;
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), str().c_str());
  std::fflush(stdout);
}

}  // namespace zmail
