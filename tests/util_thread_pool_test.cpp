#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace zmail::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued; must not hang
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  pool.wait_idle();  // idempotent
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SameResultAt1And4Workers) {
  // A deterministic slot-addressed reduction: identical regardless of the
  // worker count — the property the sweep harness is built on.
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> slot(257);
    pool.parallel_for(slot.size(), [&](std::size_t i) {
      std::uint64_t x = i * 0x9E3779B97F4A7C15ull + 1;
      for (int k = 0; k < 64; ++k) x ^= (x << 13) ^ (x >> 7);
      slot[i] = x;
    });
    return std::accumulate(slot.begin(), slot.end(), std::uint64_t{0});
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
  }  // destructor joins after completing queued tasks
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace zmail::util
