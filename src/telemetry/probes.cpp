#include "telemetry/probes.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace zmail::telemetry {

const char* agg_name(Agg a) noexcept {
  switch (a) {
    case Agg::kLast: return "last";
    case Agg::kMean: return "mean";
    case Agg::kMax: return "max";
    case Agg::kMin: return "min";
    case Agg::kSum: return "sum";
    case Agg::kSlopePerSec: return "slope_per_sec";
  }
  return "?";
}

const char* cmp_name(Cmp c) noexcept {
  switch (c) {
    case Cmp::kGt: return ">";
    case Cmp::kGe: return ">=";
    case Cmp::kLt: return "<";
    case Cmp::kLe: return "<=";
  }
  return "?";
}

namespace {

// "store.*.wal_backlog_records" — a single '*' splits the pattern into a
// required prefix and suffix.  No '*': exact match.
bool key_matches(const std::string& pattern, const std::string& key) {
  const std::size_t star = pattern.find('*');
  if (star == std::string::npos) return pattern == key;
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  if (key.size() < prefix.size() + suffix.size()) return false;
  return key.compare(0, prefix.size(), prefix) == 0 &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double aggregate(const ProbeRule& rule, const Series& s, std::size_t end) {
  // Window = points [begin, end] inclusive, clamped at the series head.
  const std::size_t w = rule.window ? rule.window : 1;
  const std::size_t begin = end + 1 >= w ? end + 1 - w : 0;
  const Kind k = s.kind;
  switch (rule.agg) {
    case Agg::kLast:
      return probe_value(k, s.points[end]);
    case Agg::kMean: {
      double sum = 0.0;
      for (std::size_t i = begin; i <= end; ++i)
        sum += probe_value(k, s.points[i]);
      return sum / static_cast<double>(end - begin + 1);
    }
    case Agg::kMax: {
      double m = probe_value(k, s.points[begin]);
      for (std::size_t i = begin + 1; i <= end; ++i)
        m = std::max(m, probe_value(k, s.points[i]));
      return m;
    }
    case Agg::kMin: {
      double m = probe_value(k, s.points[begin]);
      for (std::size_t i = begin + 1; i <= end; ++i)
        m = std::min(m, probe_value(k, s.points[i]));
      return m;
    }
    case Agg::kSum: {
      double sum = 0.0;
      for (std::size_t i = begin; i <= end; ++i)
        sum += probe_value(k, s.points[i]);
      return sum;
    }
    case Agg::kSlopePerSec: {
      if (begin == end) return 0.0;  // a one-point window has no slope
      const double dv = probe_value(k, s.points[end]) -
                        probe_value(k, s.points[begin]);
      const double dt_sec =
          static_cast<double>(s.points[end].t_us - s.points[begin].t_us) / 1e6;
      return dt_sec > 0.0 ? dv / dt_sec : 0.0;
    }
  }
  return 0.0;
}

bool breaches(Cmp c, double value, double threshold) noexcept {
  switch (c) {
    case Cmp::kGt: return value > threshold;
    case Cmp::kGe: return value >= threshold;
    case Cmp::kLt: return value < threshold;
    case Cmp::kLe: return value <= threshold;
  }
  return false;
}

}  // namespace

ProbeStatus evaluate_rule(const ProbeRule& rule, const Series& s) {
  ProbeStatus st;
  st.rule = rule;
  st.rule.series = s.key();  // concrete key (wildcards resolved)
  if (s.points.empty()) return st;
  st.evaluated = true;

  const std::size_t fire_for = std::max<std::size_t>(1, rule.fire_for);
  const std::size_t clear_for = std::max<std::size_t>(1, rule.clear_for);
  std::size_t breach_streak = 0, ok_streak = 0;
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    const double v = aggregate(rule, s, i);
    ++st.evaluations;
    st.last_value = v;
    const bool breach = breaches(rule.cmp, v, rule.threshold);
    if (breach) {
      ++st.breaches;
      ++breach_streak;
      ok_streak = 0;
      if (!st.firing && breach_streak >= fire_for) {
        st.firing = true;
        st.transitions.push_back({s.points[i].t_us, true, v});
      }
    } else {
      ++ok_streak;
      breach_streak = 0;
      if (st.firing && ok_streak >= clear_for) {
        st.firing = false;
        st.transitions.push_back({s.points[i].t_us, false, v});
      }
    }
  }
  return st;
}

ProbeReport ProbeEngine::evaluate(const std::vector<Series>& series,
                                  bool log_transitions) const {
  ProbeReport report;
  for (const ProbeRule& rule : rules_) {
    bool matched = false;
    for (const Series& s : series) {
      if (!key_matches(rule.series, s.key())) continue;
      matched = true;
      ProbeStatus st = evaluate_rule(rule, s);
      if (log_transitions) {
        for (const ProbeTransition& t : st.transitions)
          ZMAIL_LOG(t.fired ? LogLevel::kWarn : LogLevel::kInfo, "probe",
                    "%s %s at t=%lld us: %s %s %g (value %g)",
                    st.rule.name.c_str(), t.fired ? "FIRING" : "cleared",
                    static_cast<long long>(t.t_us), agg_name(rule.agg),
                    cmp_name(rule.cmp), rule.threshold, t.value);
      }
      report.probes.push_back(std::move(st));
    }
    if (!matched) {
      ProbeStatus st;
      st.rule = rule;
      report.probes.push_back(std::move(st));
    }
  }
  return report;
}

std::vector<ProbeRule> default_rules() {
  std::vector<ProbeRule> rules;
  // WAL backlog: records logged since the last checkpoint truncated the
  // log.  A healthy party checkpoints at quiesce/round boundaries, so the
  // backlog sawtooths; a party that stops checkpointing (crashed, wedged
  // round) climbs through the threshold and fires until recovery.
  rules.push_back(ProbeRule{"wal_backlog_growth",
                            "store.*.wal_backlog_records", Agg::kLast,
                            Cmp::kGt, 400.0, 1, 2, 1});
  // Conservation gap = supply + endowment - holdings = e-pennies riding
  // in-flight mail and unsettled trades.  A sustained positive slope means
  // value is leaking out of the books (lost paid mail never refunded).
  rules.push_back(ProbeRule{"conservation_drift",
                            "econ.total.conservation_gap", Agg::kSlopePerSec,
                            Cmp::kGt, 0.01, 10, 2, 2});
  // Delivery latency p99 per recipient ISP: fires when the tail crosses 15
  // simulated minutes (quiesce buffering tops out at 10; anything beyond
  // means retransmit storms or outage queues).
  rules.push_back(ProbeRule{"delivery_latency_p99",
                            "core.*.delivery_latency_us", Agg::kMax,
                            Cmp::kGt, 9e8, 5, 1, 1});
  // Engine health: busiest/idlest shard event-rate ratio (derived series,
  // partition-dependent by nature).
  rules.push_back(ProbeRule{"shard_imbalance",
                            "sim.shard_imbalance_ratio", Agg::kLast,
                            Cmp::kGt, 8.0, 3, 2, 2});
  return rules;
}

json::Value to_json(const ProbeReport& report) {
  json::Value j = json::Value::object();
  j["probes_total"] = static_cast<std::uint64_t>(report.probes.size());
  j["probes_evaluated"] =
      static_cast<std::uint64_t>(report.evaluated_count());
  j["probes_firing"] = static_cast<std::uint64_t>(report.firing_count());
  j["ok"] = report.ok();
  json::Value& arr = j["results"];
  arr = json::Value::array();
  for (const ProbeStatus& p : report.probes) {
    json::Value e = json::Value::object();
    e["name"] = p.rule.name;
    e["series"] = p.rule.series;
    e["agg"] = agg_name(p.rule.agg);
    e["cmp"] = cmp_name(p.rule.cmp);
    e["threshold"] = p.rule.threshold;
    e["window"] = static_cast<std::uint64_t>(p.rule.window);
    e["evaluated"] = p.evaluated;
    e["firing"] = p.firing;
    e["evaluations"] = p.evaluations;
    e["breaches"] = p.breaches;
    e["last_value"] = p.last_value;
    json::Value& tr = e["transitions"];
    tr = json::Value::array();
    for (const ProbeTransition& t : p.transitions) {
      json::Value te = json::Value::object();
      te["t_us"] = t.t_us;
      te["fired"] = t.fired;
      te["value"] = t.value;
      tr.push_back(std::move(te));
    }
    arr.push_back(std::move(e));
  }
  return j;
}

}  // namespace zmail::telemetry
