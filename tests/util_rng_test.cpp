#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace zmail {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, LowEntropySeedsAreWellMixed) {
  // Seeds 0 and 1 must not produce correlated output (SplitMix seeding).
  Rng a(0), b(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsScalesCorrectly) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMeanMatchesTheory) {
  Rng rng(31);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = 1.0, sigma = 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.08);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(37);
  for (double mean : {0.5, 3.0, 30.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
      sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(41);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GeometricMean) {
  Rng rng(47);
  // E[failures before success] = (1-p)/p.
  const double p = 0.25;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(53);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ZipfStaysInRangeAndFavorsLowRanks) {
  Rng rng(59);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t r = rng.zipf(100, 1.2);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    if (r <= 10) ++low;
  }
  // Zipf(1.2) concentrates most of the mass in the first decile.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.5);
}

TEST(Rng, WeightedChoiceRespectsWeights) {
  Rng rng(61);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_choice(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedChoiceAllZeroFallsBackToUniform) {
  Rng rng(67);
  std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_choice(w)];
  for (int c : counts) EXPECT_GT(c, 1000);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(71);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(73);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(99);
  Rng a2(99);
  Rng c1 = a.split();
  Rng c2 = a2.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Parent and child diverge.
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

// Chi-squared sanity sweep over next_below bounds.
class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, NextBelowIsRoughlyUniform) {
  const std::uint64_t k = GetParam();
  Rng rng(1000 + k);
  std::vector<std::uint64_t> counts(k, 0);
  const std::uint64_t n = 2000 * k;
  for (std::uint64_t i = 0; i < n; ++i) ++counts[rng.next_below(k)];
  const double expected = static_cast<double>(n) / static_cast<double>(k);
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // df = k-1; a generous 5-sigma-ish bound: df + 5*sqrt(2 df).
  const double df = static_cast<double>(k - 1);
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df) + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformityTest,
                         ::testing::Values(2, 3, 7, 10, 64, 100));

}  // namespace
}  // namespace zmail
