#include "telemetry/series.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace zmail::telemetry {

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kGauge: return "gauge";
    case Kind::kRate: return "rate";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

Point merge_points(Kind k, const Point& a, const Point& b) noexcept {
  Point m;
  m.t_us = b.t_us;  // the merged point covers both windows; stamp the end
  switch (k) {
    case Kind::kGauge:
      m.value = b.value;  // later level wins: a gauge has no history
      break;
    case Kind::kRate:
      m.value = a.value + b.value;  // window deltas sum exactly (integers)
      break;
    case Kind::kHistogram: {
      m.count = a.count + b.count;
      m.sum = a.sum + b.sum;
      if (a.count == 0) {
        m.min = b.min;
        m.max = b.max;
      } else if (b.count == 0) {
        m.min = a.min;
        m.max = a.max;
      } else {
        m.min = std::min(a.min, b.min);
        m.max = std::max(a.max, b.max);
      }
      // Count-weighted blend: within the 2x bucket resolution the raw
      // percentiles already had, and deterministic.
      const double n = static_cast<double>(m.count);
      if (m.count > 0) {
        m.p50 = (a.p50 * static_cast<double>(a.count) +
                 b.p50 * static_cast<double>(b.count)) / n;
        m.p99 = (a.p99 * static_cast<double>(a.count) +
                 b.p99 * static_cast<double>(b.count)) / n;
      }
      break;
    }
  }
  return m;
}

DownsamplingRing::DownsamplingRing(Kind kind, std::size_t capacity)
    : kind_(kind), capacity_(capacity < 2 ? 2 : capacity & ~std::size_t{1}) {
  pts_.reserve(capacity_);
}

void DownsamplingRing::append(const Point& p) {
  ++appended_;
  if (level_ == 0) {
    pts_.push_back(p);
  } else {
    // Fold 2^level_ raw samples into one stored point.
    acc_ = acc_filled_ == 0 ? p : merge_points(kind_, acc_, p);
    if (++acc_filled_ < (1u << level_)) return;
    pts_.push_back(acc_);
    acc_filled_ = 0;
    acc_ = Point{};
  }
  if (pts_.size() >= capacity_) compact();
}

void DownsamplingRing::compact() {
  // Halve resolution: merge (0,1) -> 0, (2,3) -> 1, ...  Capacity is even,
  // so a full ring folds exactly.
  const std::size_t n = pts_.size() / 2;
  for (std::size_t i = 0; i < n; ++i)
    pts_[i] = merge_points(kind_, pts_[2 * i], pts_[2 * i + 1]);
  if (pts_.size() & 1) {
    // Odd leftover (only possible if capacity changed): keep it as the
    // partial fold of the next coarser point.
    acc_ = acc_filled_ == 0 ? pts_.back() : merge_points(kind_, pts_.back(), acc_);
    ++acc_filled_;
  }
  pts_.resize(n);
  ++level_;
}

void LogHistogram::record(std::uint64_t micros) noexcept {
  const std::size_t b =
      micros == 0 ? 0 : static_cast<std::size_t>(63 - __builtin_clzll(micros));
  ++buckets_[b];
  sum_ += micros;
  if (count_ == 0) {
    min_ = max_ = micros;
  } else {
    min_ = std::min(min_, micros);
    max_ = std::max(max_, micros);
  }
  ++count_;
}

double LogHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += static_cast<double>(buckets_[b]);
    if (cum >= target)
      return 1.5 * static_cast<double>(std::uint64_t{1} << b);
  }
  return static_cast<double>(max_);
}

Point LogHistogram::flush(std::int64_t t_us) noexcept {
  Point p;
  p.t_us = t_us;
  p.count = count_;
  p.sum = static_cast<double>(sum_);
  p.min = static_cast<double>(min_);
  p.max = static_cast<double>(max_);
  p.p50 = percentile(50);
  p.p99 = percentile(99);
  p.value = p.p99;  // convenience: single-value consumers read the p99
  for (auto& b : buckets_) b = 0;
  count_ = sum_ = min_ = max_ = 0;
  return p;
}

double probe_value(Kind k, const Point& p) noexcept {
  return k == Kind::kHistogram ? p.p99 : p.value;
}

}  // namespace zmail::telemetry
