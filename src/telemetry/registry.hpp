// TelemetryRegistry — the per-world sampling engine.
//
// A system facade (ZmailSystem / FederatedZmailSystem; ShardedSystem keeps
// one registry per shard) registers named gauge/rate samplers and histogram
// channels at enable time, then schedules one read-only sampling tick per
// sample_period of simulated time.  The determinism contract mirrors
// zmail::trace:
//
//   - Telemetry off (the default): no registry is constructed, no events
//     are scheduled, no sampler runs — runs are bit-identical to a build
//     without telemetry.
//   - Telemetry on: the tick draws no randomness and mutates no simulation
//     state, so enabling it cannot change what the world does; it only adds
//     observation events.  Every series is sampled by exactly one owner
//     entity at sim-time stamps that are multiples of sample_period, so the
//     merged multi-shard series are bit-identical at any shard or thread
//     count.
//   - Execution-dependent signals (event backlogs, wall-clock costs)
//     register with the engine_* variants: they stay out of the
//     deterministic section and never feed bit-identity diffs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/series.hpp"

namespace zmail::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  // Sampling cadence in simulated time.  Every gauge/rate emits one point
  // per period; histogram channels emit one point per non-empty window.
  sim::Duration sample_period = sim::kMinute;
  // Per-series ring capacity; beyond it the ring halves its resolution.
  std::size_t ring_capacity = 512;
  // Non-empty: rewrite this file with the Prometheus text exposition of
  // the current values at every sampling tick (the scrape surface).
  std::string prom_path;
};

class TelemetryRegistry {
 public:
  using GaugeFn = std::function<double()>;    // instantaneous level
  using CounterFn = std::function<double()>;  // cumulative monotone counter

  explicit TelemetryRegistry(TelemetryConfig cfg = {});

  // --- Registration (at enable time, before the run) -----------------------
  // Samplers MUST be read-only: they may not mutate simulation state or
  // draw randomness.  `name` follows "<entity>.<signal>" ("isp3.delivered",
  // "bank.epenny_supply") so exporters can split the entity label out.
  void add_gauge(std::string scope, std::string name, GaugeFn fn);
  void add_rate(std::string scope, std::string name, CounterFn fn);
  void add_engine_gauge(std::string scope, std::string name, GaugeFn fn);
  void add_engine_rate(std::string scope, std::string name, CounterFn fn);

  // Histogram channels are fed from hot paths via observe(); registration
  // returns the channel id.  kNoChannel observations are dropped, so call
  // sites can hold an id unconditionally and stay zero-cost when off.
  static constexpr std::size_t kNoChannel = static_cast<std::size_t>(-1);
  std::size_t add_histogram(std::string scope, std::string name,
                            bool engine = false);
  void observe(std::size_t channel, std::uint64_t micros) noexcept;

  // --- Sampling -------------------------------------------------------------
  // One tick: reads every sampler, flushes every non-empty histogram
  // window, stamps points with `now`.  The facade schedules this every
  // sample_period; it never mutates anything outside the registry.
  void sample(sim::SimTime now);

  const TelemetryConfig& config() const noexcept { return cfg_; }
  std::uint64_t ticks() const noexcept { return ticks_; }
  std::size_t series_count() const noexcept {
    return samplers_.size() + channels_.size();
  }

  // Owned copies of every series (deterministic and engine), points as
  // recorded.  The exporters merge these across registries.
  std::vector<Series> collect() const;

 private:
  struct Sampler {
    std::string scope, name;
    Kind kind;
    bool engine;
    std::function<double()> fn;
    double last = 0.0;  // rate: previous counter reading
    DownsamplingRing ring;
  };
  struct Channel {
    std::string scope, name;
    bool engine;
    LogHistogram hist;
    DownsamplingRing ring;
  };

  TelemetryConfig cfg_;
  std::vector<Sampler> samplers_;
  std::vector<Channel> channels_;
  std::uint64_t ticks_ = 0;
};

}  // namespace zmail::telemetry
