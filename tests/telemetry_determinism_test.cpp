// Telemetry determinism end to end: the merged deterministic `timeseries`
// section of an instrumented sharded world must be bit-identical at any
// shard or thread count (fault-free and under an adversarial FaultPlan),
// the single-shard facade must match the plain whole-world system, the
// probe report must be a pure function of the series, and enabling
// telemetry must not change what the world does.
#include <gtest/gtest.h>

#include <string>

#include "core/obs.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "util/json.hpp"

namespace zmail::core {
namespace {

ZmailParams world_params() {
  ZmailParams p;
  p.n_isps = 8;
  p.users_per_isp = 3;
  p.initial_user_balance = 200;
  p.default_daily_limit = 1'000;
  p.initial_avail = 300;
  p.minavail = 100;
  p.maxavail = 600;
  p.record_inboxes = false;
  return p;
}

telemetry::TelemetryConfig telemetry_config() {
  telemetry::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = sim::kMinute;
  return cfg;
}

// One fixed verb stream, replayed identically against any world.  The
// draws depend only on the seed, never on world state, so every run
// issues the same verbs (same idiom as sim_sharded_test).
template <typename World>
void drive_mixed_traffic(World& w, std::uint64_t seed, int rounds) {
  Rng rng(seed);
  const std::size_t n = w.params().n_isps;
  const std::size_t u = w.params().users_per_isp;
  for (int i = 0; i < rounds; ++i) {
    const std::size_t src = rng.next_below(n);
    const std::size_t dst = (src + 1 + rng.next_below(n - 1)) % n;
    w.send_email(net::make_user_address(src, rng.next_below(u)),
                 net::make_user_address(dst, rng.next_below(u)), "t",
                 "b" + std::to_string(i));
    if (i % 7 == 3)
      w.buy_epennies(net::make_user_address(src, 0),
                     static_cast<EPenny>(1 + rng.next_below(5)));
    if (i % 11 == 6)
      w.sell_epennies(net::make_user_address(dst, 0),
                      static_cast<EPenny>(1 + rng.next_below(3)));
    w.run_for(sim::kMinute);
  }
  w.run_for(sim::kHour);
}

// The deterministic slice of the recorded telemetry: merged `timeseries`
// JSON plus the probe report.  Engine series (per-shard backlogs) are
// partition-dependent by design and stay out of the comparison.
std::string deterministic_dump(ShardedSystem& w) {
  telemetry::DeriveSpec spec;
  spec.endowment_epennies = static_cast<double>(w.initial_endowment());
  const std::vector<telemetry::Series> merged =
      telemetry::merge_series(w.telemetry_registries(), spec);
  telemetry::ProbeEngine probes;
  for (telemetry::ProbeRule& r : telemetry::default_rules())
    probes.add_rule(std::move(r));
  return telemetry::timeseries_json(merged, /*engine=*/false).dump() + "\n" +
         telemetry::to_json(probes.evaluate(merged, false)).dump();
}

std::string run_instrumented(std::size_t shards, std::size_t threads,
                             std::uint64_t seed) {
  ShardOptions o;
  o.shards = shards;
  o.threads = threads;
  ShardedSystem w(world_params(), seed, o);
  w.enable_telemetry(telemetry_config());
  drive_mixed_traffic(w, seed + 1, 40);
  w.end_of_day();
  w.run_for(sim::kHour);
  EXPECT_TRUE(w.conservation_holds());
  return deterministic_dump(w);
}

TEST(TelemetryDeterminismTest, TimeseriesBitIdenticalAcrossShardCounts) {
  const std::string s2 = run_instrumented(2, 0, 515);
  const std::string s4 = run_instrumented(4, 0, 515);
  const std::string s8 = run_instrumented(8, 0, 515);
  EXPECT_EQ(s2, s4);
  EXPECT_EQ(s4, s8);
  EXPECT_NE(s2.find("core.total.delivered"), std::string::npos);
  EXPECT_NE(s2.find("econ.market.stamp_price_micros"), std::string::npos);
}

TEST(TelemetryDeterminismTest, TimeseriesIndependentOfThreadCount) {
  const std::string t1 = run_instrumented(4, 1, 616);
  const std::string t2 = run_instrumented(4, 2, 616);
  const std::string t4 = run_instrumented(4, 4, 616);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t2, t4);
}

TEST(TelemetryDeterminismTest, TimeseriesBitIdenticalUnderFaultPlan) {
  net::FaultPlan plan;
  plan.rates.drop = 0.10;
  plan.rates.duplicate = 0.05;
  plan.rates.delay_spike = 0.05;

  const auto run = [&](std::size_t shards) {
    ZmailParams p = world_params();
    p.retry.enabled = true;
    p.reliable_email_transport = true;
    ShardOptions o;
    o.shards = shards;
    ShardedSystem w(p, 919, o);
    w.attach_faults(plan, 920);
    w.enable_telemetry(telemetry_config());
    drive_mixed_traffic(w, 921, 40);
    w.run_for(4 * sim::kHour);  // bounded drain (retry poller never quiets)
    EXPECT_TRUE(w.conservation_holds());
    return deterministic_dump(w);
  };

  const std::string s2 = run(2);
  const std::string s4 = run(4);
  EXPECT_EQ(s2, s4);
}

TEST(TelemetryDeterminismTest, SingleShardFacadeMatchesPlainSystem) {
  ZmailSystem plain(world_params(), 717);
  plain.enable_telemetry(telemetry_config());
  drive_mixed_traffic(plain, 718, 40);

  ShardOptions o;  // shards == 1: facade holds one whole-world system
  ShardedSystem facade(world_params(), 717, o);
  EXPECT_FALSE(facade.sharded());
  facade.enable_telemetry(telemetry_config());
  drive_mixed_traffic(facade, 718, 40);

  telemetry::DeriveSpec spec;
  spec.endowment_epennies =
      static_cast<double>(plain.initial_endowment_owned());
  const std::string a =
      telemetry::timeseries_json(
          telemetry::merge_series({plain.telemetry()}, spec), false)
          .dump();
  const std::string b =
      telemetry::timeseries_json(
          telemetry::merge_series(facade.telemetry_registries(), spec), false)
          .dump();
  EXPECT_EQ(a, b);
}

TEST(TelemetryDeterminismTest, EnablingTelemetryDoesNotChangeTheWorld) {
  // The zero-cost contract's other half: the sampling tick is read-only,
  // so an instrumented run's world state must match an uninstrumented one.
  ZmailSystem off(world_params(), 818);
  drive_mixed_traffic(off, 819, 40);

  ZmailSystem on(world_params(), 818);
  on.enable_telemetry(telemetry_config());
  drive_mixed_traffic(on, 819, 40);

  EXPECT_EQ(obs::snapshot(off, obs::Schema::kV1).dump(),
            obs::snapshot(on, obs::Schema::kV1).dump());
}

}  // namespace
}  // namespace zmail::core
