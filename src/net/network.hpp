// Simulated host-to-host network with latency, bound to the event simulator.
//
// Hosts (ISP mail servers, the bank) register a handler for typed datagrams;
// `send` schedules delivery after a sampled latency.  Delivery is reliable
// and per-pair FIFO (matching the AP channel abstraction); the byte counters
// feed the ISP-overhead experiment (E3).
//
// Hot-path layout (see DESIGN.md "Hot path"): a datagram's payload is moved
// into a pooled pending slot, the scheduled delivery closure captures only
// {network, slot} (fits InlineEvent's inline buffer), and delivery moves the
// datagram back out for the handler — the payload bytes are never copied
// between send() and the handler.  Per-pair FIFO clamps live in flat
// vectors indexed by host id; only MX names pay for hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "net/msg_type.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace zmail::net {

constexpr HostId kNoHost = static_cast<HostId>(-1);

// Typed result of Network::send.  Unknown hosts and untyped datagrams are
// reported (and counted) instead of aborting, mirroring the bytes_sent_to
// 0-for-unknown convention; kFaultDropped means an attached FaultInjector
// swallowed the datagram at send time (partition, outage, or drop fault).
enum class SendStatus : std::uint8_t {
  kOk = 0,
  kUnknownHost,
  kInvalidType,
  kFaultDropped,
};

struct Datagram {
  MsgType type;
  crypto::Bytes payload;
  HostId from = kNoHost;
  HostId to = kNoHost;
  // Causal context captured at send time (zmail::trace); restored around
  // the delivery handler so receive-side work joins the sender's chain.
  std::uint64_t trace = 0;
};

// Latency model: base plus exponential jitter.
struct LatencyModel {
  sim::Duration base = 20 * sim::kMillisecond;
  sim::Duration jitter_mean = 10 * sim::kMillisecond;

  sim::Duration sample(Rng& rng) const {
    if (jitter_mean <= 0) return base;  // jitter-free links draw no RNG
    return base + sim::from_seconds(
                      rng.exponential(1.0 / sim::to_seconds(jitter_mean)));
  }
};

class Network {
 public:
  using HandlerFn = std::function<void(const Datagram&)>;

  Network(sim::Simulator& simulator, Rng rng,
          LatencyModel latency = LatencyModel{});

  // Registers a host; the handler runs at delivery time.
  HostId add_host(std::string name, HandlerFn handler);

  // Latency-delayed, per-pair FIFO delivery (reliable unless a fault
  // injector is attached).  The payload is consumed: it moves through the
  // pending slot to the handler unexposed to any copy.  Unknown host ids
  // return kUnknownHost and bump send_errors() instead of aborting.
  SendStatus send(HostId from, HostId to, MsgType type,
                  crypto::Bytes&& payload);

  // Attaches (or detaches, with nullptr) a fault injector.  Not owned; must
  // outlive the network or be detached first.  With no injector the send
  // and deliver paths draw the same RNG sequence and schedule the same
  // events as a build without the fault layer.
  void attach_faults(FaultInjector* injector) noexcept { faults_ = injector; }
  FaultInjector* faults() const noexcept { return faults_; }

  // MX-style name resolution (domain -> host).
  void bind_domain(const std::string& domain, HostId host);
  HostId resolve(const std::string& domain) const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_.at(h).name; }

  std::uint64_t datagrams_sent() const noexcept { return datagrams_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }
  // Bytes delivered toward `h`; 0 for hosts that never received traffic
  // (including ids never registered).
  std::uint64_t bytes_sent_to(HostId h) const noexcept {
    return h < bytes_to_.size() ? bytes_to_[h] : 0;
  }
  // Sends rejected for an unknown host or invalid type.
  std::uint64_t send_errors() const noexcept { return send_errors_; }

 private:
  struct Host {
    std::string name;
    HandlerFn handler;
    // Last scheduled delivery per sender host id, to preserve FIFO under
    // jitter.  Grown on demand; 0 means "nothing scheduled yet".
    std::vector<sim::SimTime> last_from;
  };

  void deliver(std::uint32_t slot);
  // Schedules one physical copy (latency sample + FIFO clamp + slot).
  void schedule_copy(HostId from, HostId to, MsgType type,
                     crypto::Bytes&& payload, bool skip_fifo,
                     sim::Duration extra_delay);

  sim::Simulator& sim_;
  Rng rng_;
  LatencyModel latency_;
  FaultInjector* faults_ = nullptr;
  std::vector<Host> hosts_;
  std::unordered_map<std::string, HostId> mx_;
  std::uint64_t datagrams_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t send_errors_ = 0;
  std::vector<std::uint64_t> bytes_to_;
  // In-flight datagram pool: slots are recycled so steady-state traffic
  // stops allocating; payload buffers are moved in and out, never copied.
  std::vector<Datagram> pending_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace zmail::net
