#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace zmail::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ZMAIL_ASSERT(task != nullptr);
  const std::size_t w =
      next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(workers_[w]->mutex);
    workers_[w]->deque.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Touch the mutex so the increment cannot slip between a worker's
  // predicate check and its sleep (classic lost-wakeup window).
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& out) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& v = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(v.mutex);
    if (v.deque.empty()) continue;
    out = std::move(v.deque.front());
    v.deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (try_pop(self, task) || try_steal(self, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0)
      return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < n; ++i)
    submit([&fn, i] { fn(i); });
  wait_idle();
}

}  // namespace zmail::util
