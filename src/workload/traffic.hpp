// Traffic generators that drive a ZmailSystem.
//
// Two populations from the paper's Section 1.2 discussion:
//   - normal users, whose send/receive volumes are roughly balanced in
//     aggregate (lognormal daily rates, recipients drawn from a contact
//     mixture of local and remote users), and
//   - spammers, who blast large unsolicited campaigns at the whole
//     population.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "workload/corpus.hpp"

namespace zmail::workload {

struct TrafficParams {
  double mean_sends_per_user_day = 8.0;
  double lognormal_sigma = 0.8;     // heterogeneity in user activity
  double local_recipient_prob = 0.3;  // same-ISP recipients
  std::size_t contacts_per_user = 12;

  // Diurnal shaping: when true, send times follow a sinusoidal day profile
  // (peak mid-afternoon, trough in the small hours) instead of uniform.
  bool diurnal = false;
  double diurnal_amplitude = 0.8;  // 0 = flat, 1 = trough reaches zero
  double peak_hour = 14.0;         // local time of maximum intensity

  // Recipient popularity: when > 0, contacts are drawn with a Zipf
  // distribution over user index (low indices are celebrities) instead of
  // uniformly.
  double zipf_popularity = 0.0;
};

// Generates one simulated day of normal traffic on `system` by scheduling
// send events at random offsets within the day.  Returns messages queued.
class TrafficGenerator {
 public:
  TrafficGenerator(core::ZmailSystem& system, const TrafficParams& params,
                   CorpusGenerator& corpus, zmail::Rng rng);

  // Builds the (static) contact graph; call once.
  void build_contacts();

  // Schedules a full day's sends starting at the current simulation time.
  // Returns the number of send events scheduled.
  std::size_t schedule_day();

  // Immediately performs `count` sends from random users (no scheduling).
  std::size_t burst(std::size_t count);

 private:
  struct UserRef {
    std::size_t isp;
    std::size_t user;
  };
  UserRef pick_recipient(const UserRef& sender);
  void do_send(const UserRef& from, const UserRef& to);
  std::size_t pick_contact_user();
  sim::Duration sample_day_offset();

  core::ZmailSystem& system_;
  TrafficParams params_;
  CorpusGenerator& corpus_;
  zmail::Rng rng_;
  // contacts_[isp][user] -> contact list
  std::vector<std::vector<std::vector<UserRef>>> contacts_;
};

struct SpamCampaignParams {
  std::size_t spammer_isp = 0;
  std::size_t spammer_user = 0;
  std::size_t messages = 1'000;
  double evade_strength = 0.0;  // misspelling obfuscation for filter tests
  bool spread_over_day = false;
};

struct SpamCampaignResult {
  std::size_t attempted = 0;
  std::size_t sent = 0;           // accepted by the sender's ISP
  std::size_t refused_balance = 0;
  std::size_t refused_limit = 0;
};

// Fires a spam campaign at uniformly random recipients across the system.
SpamCampaignResult run_spam_campaign(core::ZmailSystem& system,
                                     const SpamCampaignParams& params,
                                     CorpusGenerator& corpus, zmail::Rng& rng);

}  // namespace zmail::workload
