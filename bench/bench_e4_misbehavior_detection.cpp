// E4 — Misbehavior detection (paper Section 4.4).
//
// Claim: after a snapshot, "the value of credit[j] in process isp[i] plus
// the value of credit[i] in process isp[j] should be zero.  Otherwise, at
// least one of the two ISPs has misbehaved."
//
// Regenerates:
//   E4.a  detection sweep over the number of colluding (free-riding) ISPs:
//         every cheating pair is flagged; no honest pair is
//   E4.b  the same property in the Abstract-Protocol rendition under
//         randomized interleavings (20 seeds)
//   E4.c  detection latency: cheats surface at the first snapshot after
//         they occur
#include <set>

#include "bench_common.hpp"
#include "core/ap_spec.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

void e4a_collusion_sweep() {
  Table t({"colluding ISPs", "cheating pairs flagged", "honest pairs flagged",
           "detected all?"});
  bool all_detected = true, no_false_accusation = true;
  for (std::size_t cheaters : {0u, 1u, 2u, 3u}) {
    core::ZmailParams p;
    p.n_isps = 6;
    p.users_per_isp = 10;
    p.initial_user_balance = 1'000;
    p.default_daily_limit = 10'000;
    p.record_inboxes = false;
    core::ZmailSystem sys(p, 41 + cheaters);
    for (std::size_t c = 0; c < cheaters; ++c)
      sys.isp(c).set_misbehavior(core::Isp::Misbehavior::kFreeRide);

    workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(42));
    workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                       Rng(43));
    traffic.build_contacts();
    traffic.burst(600);
    sys.run_for(2 * sim::kHour);
    sys.start_snapshot();
    sys.run_for(30 * sim::kMinute);

    std::size_t cheat_pairs_flagged = 0, honest_pairs_flagged = 0;
    std::set<std::size_t> flagged;
    for (const auto& v : sys.bank().last_violations()) {
      const bool involves_cheater = v.isp_i < cheaters || v.isp_j < cheaters;
      if (involves_cheater)
        ++cheat_pairs_flagged;
      else
        ++honest_pairs_flagged;
      flagged.insert(v.isp_i);
      flagged.insert(v.isp_j);
    }
    // Every cheater that actually shipped unpaid mail must appear.
    bool all_cheaters_flagged = true;
    for (std::size_t c = 0; c < cheaters; ++c) {
      if (sys.isp(c).metrics().emails_sent_compliant > 0 &&
          flagged.count(c) == 0)
        all_cheaters_flagged = false;
    }
    all_detected = all_detected && all_cheaters_flagged;
    no_false_accusation = no_false_accusation && honest_pairs_flagged == 0;
    t.add_row({Table::num(std::uint64_t{cheaters}),
               Table::num(std::uint64_t{cheat_pairs_flagged}),
               Table::num(std::uint64_t{honest_pairs_flagged}),
               all_cheaters_flagged ? "yes" : "NO"});
  }
  t.print("E4.a  free-riding ISPs vs snapshot verification (6 ISPs)");
  bench::check(all_detected, "every active colluder is flagged");
  bench::check(no_false_accusation, "no honest pair is ever flagged");
}

void e4b_ap_randomized() {
  std::size_t detected = 0, runs_with_cheating = 0;
  for (std::uint64_t seed = 1000; seed < 1020; ++seed) {
    core::ZmailParams p;
    p.n_isps = 4;
    p.users_per_isp = 3;
    p.initial_user_balance = 50;
    p.default_daily_limit = 1'000;
    core::ApZmailWorld world(p, ap::Scheduler::Policy::kRandom, seed);
    world.isp(0).cheat_free_ride = true;
    for (std::size_t i = 0; i < 4; ++i) world.isp(i).send_budget = 60;
    world.run();
    world.bank().snapshot_budget = 1;
    world.run();
    if (world.isp(0).emails_sent_out == 0) continue;
    ++runs_with_cheating;
    bool flagged = false;
    for (const auto& v : world.bank().violations)
      if (v.i == 0 || v.j == 0) flagged = true;
    if (flagged) ++detected;
  }
  Table t({"randomized runs with cheating", "detected", "rate"});
  t.add_row({Table::num(std::uint64_t{runs_with_cheating}),
             Table::num(std::uint64_t{detected}),
             Table::pct(runs_with_cheating
                            ? static_cast<double>(detected) /
                                  static_cast<double>(runs_with_cheating)
                            : 0.0)});
  t.print("E4.b  AP rendition, randomized interleavings");
  bench::check(detected == runs_with_cheating,
               "detection holds under every interleaving tested");
}

void e4c_detection_latency() {
  core::ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 10;
  p.initial_user_balance = 1'000;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, 45);
  sys.enable_periodic_snapshots(sim::kDay);

  // Honest traffic for 2 days, then the ISP turns rogue on day 3.
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(46));
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     Rng(47));
  traffic.build_contacts();

  Table t({"day", "rogue?", "violations at that day's snapshot"});
  int first_detection_day = -1;
  for (int day = 0; day < 5; ++day) {
    if (day == 2)
      sys.isp(0).set_misbehavior(core::Isp::Misbehavior::kFreeRide);
    traffic.burst(200);
    sys.run_for(sim::kDay);
    const std::size_t violations = sys.bank().last_violations().size();
    if (violations > 0 && first_detection_day < 0) first_detection_day = day;
    t.add_row({Table::num(std::int64_t{day}), day >= 2 ? "yes" : "no",
               Table::num(std::uint64_t{violations})});
  }
  t.print("E4.c  detection latency with daily snapshots (rogue from day 2)");
  bench::check(first_detection_day == 2,
               "cheating surfaces at the first snapshot after it begins");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e4_misbehavior_detection", argc, argv);
  std::printf("=== E4: misbehavior detection ===\n");
  e4a_collusion_sweep();
  e4b_ap_randomized();
  e4c_detection_latency();
  return harness.finish();
}
