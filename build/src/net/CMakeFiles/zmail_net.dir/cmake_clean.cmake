file(REMOVE_RECURSE
  "CMakeFiles/zmail_net.dir/address.cpp.o"
  "CMakeFiles/zmail_net.dir/address.cpp.o.d"
  "CMakeFiles/zmail_net.dir/email.cpp.o"
  "CMakeFiles/zmail_net.dir/email.cpp.o.d"
  "CMakeFiles/zmail_net.dir/network.cpp.o"
  "CMakeFiles/zmail_net.dir/network.cpp.o.d"
  "CMakeFiles/zmail_net.dir/smtp.cpp.o"
  "CMakeFiles/zmail_net.dir/smtp.cpp.o.d"
  "libzmail_net.a"
  "libzmail_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
