// Minimal leveled logger.
//
// Simulations are chatty only when asked: the default level is kWarn so that
// benches stay quiet, and tests can raise verbosity per-fixture.  Components
// (the `tag` argument: "net", "core", "store", "sim", ...) can be filtered
// individually with set_component_log_level, overriding the global threshold
// in either direction.  An optional sink receives every record that passes
// its threshold, in addition to stderr; zmail::trace uses this to mirror
// logs into the flight recorder so logs and spans share one timeline.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace zmail {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Per-component override; takes precedence over the global threshold for
// records whose tag matches exactly.  Pass kOff to silence a component,
// kTrace to open one up.  clear_component_log_levels() removes all overrides.
void set_component_log_level(const std::string& tag, LogLevel level);
void clear_component_log_levels();

// Effective threshold test for one record (global or component override).
bool log_enabled(LogLevel level, const char* tag) noexcept;

// Optional mirror: called with every record that passes its threshold,
// after the message is formatted.  Replaces any previous sink; pass a
// default-constructed function to remove.  The sink must not log.
using LogSink = std::function<void(LogLevel, const char* tag,
                                   const char* text)>;
void set_log_sink(LogSink sink);

// printf-style logging with a subsystem tag, e.g. LOGF(kInfo, "bank", ...).
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace zmail

#define ZMAIL_LOG(level, tag, ...)                                   \
  do {                                                               \
    if (::zmail::log_enabled((level), (tag)))                        \
      ::zmail::logf((level), (tag), __VA_ARGS__);                    \
  } while (0)
