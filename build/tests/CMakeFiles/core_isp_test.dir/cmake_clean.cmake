file(REMOVE_RECURSE
  "CMakeFiles/core_isp_test.dir/core_isp_test.cpp.o"
  "CMakeFiles/core_isp_test.dir/core_isp_test.cpp.o.d"
  "core_isp_test"
  "core_isp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_isp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
