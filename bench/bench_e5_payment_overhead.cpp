// E5 — Bulk vs per-message payment handling (paper Section 2.3).
//
// Claim: in SHRED/Vanquish "the storage and computational cost for an ISP
// to collect an individual payment could possibly exceed the monetary value
// of the payment ... in our approach payments are handled in a bulk
// fashion; therefore, the cost of handling payments is small."
//
// Regenerates:
//   E5.a  ledger operations vs mail volume: SHRED-style per-message
//         handling grows linearly; Zmail settlement is per ISP pair per
//         billing period, independent of volume
//   E5.b  handling cost vs value moved: SHRED's processing cost exceeds
//         the pennies it collects; Zmail amortizes to noise
//   E5.c  receiver effort: SHRED needs a human action per reported spam;
//         Zmail needs none
#include "baselines/shred.hpp"
#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

struct ZmailRun {
  std::uint64_t messages = 0;
  std::uint64_t ledger_ops = 0;   // settlements + bank trades
  std::uint64_t settlement_bytes = 0;
  double receiver_actions = 0;
};

ZmailRun run_zmail(std::size_t volume) {
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 20;
  p.initial_user_balance = 100'000;
  p.default_daily_limit = 1'000'000;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, 51);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(52));
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     Rng(53));
  traffic.build_contacts();
  traffic.burst(volume);
  sys.run_for(2 * sim::kHour);
  sys.start_snapshot();  // one billing period
  sys.run_for(30 * sim::kMinute);

  ZmailRun out;
  out.messages = volume;
  out.ledger_ops = sys.bank().metrics().settlement_transfers +
                   sys.bank().metrics().buys_received +
                   sys.bank().metrics().sells_received;
  out.settlement_bytes = sys.bank().metrics().settlement_bytes;
  out.receiver_actions = 0;  // payments are automatic
  return out;
}

void e5a_ledger_ops() {
  Table t({"mail volume", "Zmail ledger ops", "SHRED ledger ops",
           "Vanquish ledger ops"});
  std::uint64_t zmail_small = 0, zmail_large = 0, shred_large = 0;
  for (std::size_t volume : {500u, 2'000u, 8'000u}) {
    const ZmailRun zm = run_zmail(volume);

    baselines::ShredParams sp;
    sp.report_prob = 0.3;
    baselines::ShredScheme shred(sp, Rng(54));
    baselines::ShredScheme vanquish(
        baselines::vanquish_as_shred(baselines::VanquishParams{}), Rng(55));
    // In the SHRED world the same volume flows and 60% of it is spam.
    for (std::size_t m = 0; m < volume; ++m) {
      const bool is_spam = m % 5 < 3;
      shred.process(is_spam);
      vanquish.process(is_spam);
    }
    t.add_row({Table::num(std::uint64_t{volume}),
               Table::num(zm.ledger_ops),
               Table::num(shred.stats().ledger_operations),
               Table::num(vanquish.stats().ledger_operations)});
    if (volume == 500) zmail_small = zm.ledger_ops;
    if (volume == 8'000) {
      zmail_large = zm.ledger_ops;
      shred_large = shred.stats().ledger_operations;
    }
  }
  t.print("E5.a  payment-handling ledger operations per billing period");
  bench::check(zmail_large <= zmail_small + 8,
               "Zmail ledger ops are ~constant in mail volume");
  bench::check(shred_large > zmail_large * 20,
               "per-message schemes do orders of magnitude more ledger work");
}

void e5b_cost_vs_value() {
  baselines::ShredParams sp;
  sp.report_prob = 1.0;  // best case for SHRED's deterrence
  baselines::ShredScheme shred(sp, Rng(56));
  for (int m = 0; m < 10'000; ++m) shred.process(m % 5 < 3);

  // Zmail: one settlement transfer moves the whole netted amount; price the
  // handling at the same 2 cents/op SHRED pays.
  const ZmailRun zm = run_zmail(10'000);
  const Money zmail_handling =
      Money::from_cents(2) * static_cast<std::int64_t>(zm.ledger_ops);

  Table t({"scheme", "value moved", "handling cost", "cost/value"});
  const Money shred_value = shred.stats().isp_revenue;
  const Money shred_cost = shred.stats().isp_handling_cost;
  t.add_row({"SHRED", shred_value.str(), shred_cost.str(),
             Table::num(shred_cost.dollars() / shred_value.dollars(), 2)});
  const Money zmail_value = Money::from_epennies(10'000);  // ~1 penny/message
  t.add_row({"Zmail", zmail_value.str(), zmail_handling.str(),
             Table::num(zmail_handling.dollars() / zmail_value.dollars(), 2)});
  t.print("E5.b  handling cost vs value moved (10k messages)");

  bench::check(shred_cost > shred_value,
               "SHRED's per-payment handling exceeds the payments themselves");
  bench::check(zmail_handling.dollars() / zmail_value.dollars() < 0.05,
               "Zmail's bulk handling is <5% of the value moved");
}

void e5c_receiver_effort() {
  baselines::ShredParams sp;
  sp.report_prob = 0.3;
  baselines::ShredScheme shred(sp, Rng(57));
  for (int m = 0; m < 10'000; ++m) shred.process(true);

  Table t({"scheme", "human actions per 10k spam", "human seconds"});
  t.add_row({"SHRED", Table::num(shred.stats().reports),
             Table::num(shred.stats().receiver_human_seconds, 0)});
  t.add_row({"Zmail", "0", "0"});
  t.print("E5.c  receiver effort (Zmail pays automatically)");
  bench::check(shred.stats().reports > 0 &&
                   shred.stats().receiver_human_seconds > 0,
               "SHRED requires receiver effort; Zmail requires none");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e5_payment_overhead", argc, argv);
  std::printf("=== E5: payment handling overhead ===\n");
  e5a_ledger_ops();
  e5b_cost_vs_value();
  e5c_receiver_effort();
  return harness.finish();
}
