#include "econ/adoption.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace zmail::econ {

std::vector<AdoptionStep> simulate_adoption(const AdoptionParams& p,
                                            zmail::Rng& rng) {
  ZMAIL_ASSERT(p.n_isps >= 2 && p.initial_compliant >= 1 &&
               p.initial_compliant <= p.n_isps);

  std::vector<bool> compliant(p.n_isps, false);
  std::vector<double> users(p.n_isps, p.users_per_isp);
  const double total_users = p.users_per_isp * static_cast<double>(p.n_isps);
  for (std::size_t i = 0; i < p.initial_compliant; ++i) compliant[i] = true;

  // ISPs differ in how much user loss they tolerate before flipping;
  // heterogeneity spreads the flip cascade into the S-curve the paper
  // sketches instead of one synchronized jump.
  std::vector<double> flip_threshold(p.n_isps);
  for (auto& t : flip_threshold)
    t = p.flip_threshold * rng.uniform(0.5, 1.8);

  std::vector<AdoptionStep> trace;
  trace.reserve(p.steps + 1);

  for (std::size_t step = 0; step <= p.steps; ++step) {
    double compliant_users = 0.0;
    std::size_t compliant_isps = 0;
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (compliant[i]) {
        compliant_users += users[i];
        ++compliant_isps;
      }
    }
    const double share = compliant_users / total_users;

    // Spam exposure.  Spammers do not pay: into the compliant world, only
    // the residual fraction leaks (Section 5 policies); the non-compliant
    // world keeps its full dose, concentrated as spammers retarget the
    // remaining free audience.
    const double concentration = 1.0 / std::max(0.05, 1.0 - 0.5 * share);
    const double spam_nc = p.spam_per_user_day * concentration;
    const double spam_c = p.spam_per_user_day * p.residual_spam_fraction;

    trace.push_back(
        AdoptionStep{step, compliant_isps, share, spam_c, spam_nc});
    if (step == p.steps) break;

    // Utility difference (positive favors compliance).  Compliant users
    // lose a little reachability to the shrinking non-compliant world.
    const double u_compliant = -spam_c * p.utility_per_spam -
                               p.reachability_weight * (1.0 - share);
    const double u_noncompliant = -spam_nc * p.utility_per_spam;
    const double delta = u_compliant - u_noncompliant;

    // Users migrate across the compliance boundary proportionally to the
    // utility gap, with small idiosyncratic noise per ISP.  Departures are
    // collected first and redistributed once, so the population is
    // conserved exactly.
    double total_leaving = 0.0;
    if (compliant_users > 0.0) {
      for (std::size_t i = 0; i < p.n_isps; ++i) {
        if (compliant[i]) continue;
        const double noise = rng.normal(0.0, 0.1);
        const double pressure = delta * (1.0 + noise);
        const double leaving =
            std::clamp(p.switch_rate * pressure, 0.0, 0.5) * users[i];
        users[i] -= leaving;
        total_leaving += leaving;
      }
      for (std::size_t j = 0; j < p.n_isps; ++j)
        if (compliant[j])
          users[j] += total_leaving * users[j] / compliant_users;
    }

    // ISPs flip when they have bled past their own threshold (or, rarely,
    // early adopters jump on their own).
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (compliant[i]) continue;
      const double lost = 1.0 - users[i] / p.users_per_isp;
      if (lost >= flip_threshold[i] ||
          (delta > 0.0 && rng.bernoulli(0.002))) {
        compliant[i] = true;
      }
    }
  }
  return trace;
}

std::size_t steps_to_share(const std::vector<AdoptionStep>& trace,
                           double share) {
  for (const auto& s : trace)
    if (s.compliant_user_share >= share) return s.step;
  return trace.empty() ? 0 : trace.back().step + 1;
}

}  // namespace zmail::econ
