file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_snapshot_quiesce.dir/bench_e7_snapshot_quiesce.cpp.o"
  "CMakeFiles/bench_e7_snapshot_quiesce.dir/bench_e7_snapshot_quiesce.cpp.o.d"
  "bench_e7_snapshot_quiesce"
  "bench_e7_snapshot_quiesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_snapshot_quiesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
