file(REMOVE_RECURSE
  "CMakeFiles/baselines_misc_test.dir/baselines_misc_test.cpp.o"
  "CMakeFiles/baselines_misc_test.dir/baselines_misc_test.cpp.o.d"
  "baselines_misc_test"
  "baselines_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
