// Compliant-ISP state machine (paper Section 4, process isp[i]).
//
// The class is I/O-free: every action that would "send" pushes an Outbound
// record into an outbox which the harness drains — the AP rendition drains
// it into AP channels, the timed rendition into SMTP sessions over the
// simulated network.  This keeps one copy of the accounting semantics under
// both execution models.
//
// Responsibilities, mapped to the paper:
//   - zero-sum email send/receive with the credit array        (Section 4.1)
//   - user e-penny purchases/sales against the avail pool      (Section 4.2)
//   - nonce-protected buy/sell against the bank                (Section 4.3)
//   - snapshot quiesce, credit report, reset                   (Section 4.4)
//   - per-user daily limit, zombie warnings                    (Section 5)
//   - mailing-list acknowledgment generation                   (Section 5)
//   - policy toward mail from non-compliant ISPs               (Section 5)
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/population.hpp"
#include "core/user_id.hpp"
#include "crypto/nonce.hpp"
#include "net/email.hpp"

namespace zmail::store {
class WalSink;
struct SnapshotSection;
struct SnapshotData;
class SnapshotFileView;
}  // namespace zmail::store

namespace zmail::core {

// A message the ISP wants transported; the harness owns actual delivery.
struct Outbound {
  enum class Dest : std::uint8_t { kIsp, kBank };
  Dest dest = Dest::kIsp;
  std::size_t isp_index = 0;  // meaningful when dest == kIsp
  net::MsgType type;
  crypto::Bytes payload;
  // The local user whose e-penny paid for this email (kInvalidUser when
  // unpaid); lets the harness refund the right account if the transfer is
  // abandoned.
  UserId sender_user = kInvalidUser;
  // Causal trace id of the message or bank exchange this record transports
  // (zmail::trace); 0 when untracked.  The harness pins it around the
  // network send so the datagram inherits the chain.
  std::uint64_t trace_id = 0;
};

enum class SendResult : std::uint8_t {
  kDeliveredLocally,  // i == j: settled inside this ISP
  kSentPaid,          // queued to a compliant ISP, 1 e-penny committed
  kSentFree,          // queued to a non-compliant ISP, no payment
  kBuffered,          // quiesce in progress; committed and held (Section 4.4)
  kNoBalance,         // balance[s] = 0 branch
  kDailyLimit,        // sent[s] >= limit[s] branch
  kQuarantined,       // account suspended after repeated zombie warnings
  kShed,              // quiesce buffer full (max_buffered_sends); refunded
};

const char* send_result_name(SendResult r) noexcept;

// One delivered message in a user's inbox.
struct Delivery {
  net::EmailMessage msg;
  bool junk = false;       // segregated (Section 5 policy)
  EPenny paid = 0;         // e-pennies this delivery earned the user
};

class Isp {
 public:
  // `params` is held by reference and must outlive the Isp; sharing one
  // params object across all parties lets the bank's compliant-array
  // updates (Section 4: "broadcast this new compliant array to every
  // compliant ISP") take effect everywhere at once.
  Isp(std::size_t index, const ZmailParams& params, crypto::RsaKey bank_pub,
      std::uint64_t secret_seed);

  std::size_t index() const noexcept { return index_; }

  // --- Section 4.1: sending (the `cansend ->` action) -------------------
  // User `s` of this ISP sends `msg` to user `r` of ISP `dest_isp`.
  SendResult user_send(UserId s, std::size_t dest_isp, UserId r,
                       net::EmailMessage msg);

  // --- Section 4.1: receiving (the `rcv email` action) ------------------
  // `from_isp` is the sending ISP's index; payload is a serialized
  // net::EmailMessage addressed to one of our users.
  void on_email(std::size_t from_isp, const crypto::Bytes& payload);

  // --- Section 4.2: user <-> ISP e-penny trades --------------------------
  bool user_buy(UserId t, EPenny x);
  bool user_sell(UserId t, EPenny x);

  // --- Section 4.3: ISP <-> bank trades ----------------------------------
  // The two `canbuy ->` / `cansell ->` actions; call periodically.  `now`
  // only matters when params.retry.enabled: it arms the retry timer for the
  // exchange just initiated.
  void maybe_trade_with_bank(sim::SimTime now = 0);
  void on_buyreply(const crypto::Bytes& wire);
  void on_sellreply(const crypto::Bytes& wire);

  // Re-emits any outstanding buy/sell/report wire whose backoff deadline
  // has passed (no-op unless params.retry.enabled).  Retries re-send the
  // *cached sealed wire* — same nonce, same bytes — so the bank's
  // idempotent handlers absorb whichever copies arrive.
  void poll_retries(sim::SimTime now);
  // True while a buy or sell exchange awaits its reply.
  bool bank_exchange_pending() const noexcept {
    return ns1_.has_value() || ns2_.has_value();
  }

  // --- Section 4.4: snapshot ---------------------------------------------
  void on_request(const crypto::Bytes& wire);
  // The `timeout expired ->` action; the harness fires it (10 simulated
  // minutes in the timed rendition; channels-empty in the AP rendition).
  // `now` arms the credit-report retry timer when params.retry.enabled.
  void on_quiesce_timeout(sim::SimTime now = 0);
  bool in_quiesce() const noexcept { return quiescing_; }

  // Undoes one paid remote send whose transfer the harness abandoned (all
  // retransmits exhausted): the payer gets the e-penny and daily-limit slot
  // back.  `same_epoch` must be true iff no snapshot reset happened between
  // transmission and abandonment — only then is the credit entry still in
  // the live array and reversed here.  (Abandoning across a snapshot
  // boundary is indistinguishable from ISP misbehaviour to the bank; the
  // default retry-forever transport never abandons.)
  void refund_lost_email(UserId sender_user, std::size_t dest_isp,
                         bool same_epoch);

  // --- Section 5: daily reset + zombie guard -----------------------------
  void end_of_day();
  // Lifts a quarantine (the user cleaned their machine) and resets the
  // warning counter.
  void release_user(UserId u);

  // --- Harness interface --------------------------------------------------
  std::vector<Outbound> take_outbox();
  bool outbox_empty() const noexcept { return outbox_.empty(); }

  // --- Introspection -------------------------------------------------------
  const ZmailParams& params() const noexcept { return params_; }
  std::size_t user_count() const noexcept { return users_.size(); }
  // Typed row access.  UserId converts implicitly from an index (like
  // IspId), so `isp.user(3)` still reads naturally; the returned proxy's
  // members alias the population's columns, so field reads and writes
  // (`user(u).balance -= 1`) compile unchanged from the UserAccount days.
  // The old `UserAccount&`-returning size_t accessor is gone — holding a
  // row reference across a restore was never safe, and the proxy makes the
  // column-backed lifetime explicit.
  UserRef user(UserId u) { return users_.at(u); }
  ConstUserRef user(UserId u) const { return users_.at(u); }
  // The whole population: visitation (for_each_active) and column spans
  // for audit/invariants and benches; per-user policy overrides live here
  // too (set_policy_override / policy_override).
  Population& users() noexcept { return users_; }
  const Population& users() const noexcept { return users_; }
  EPenny avail() const noexcept { return avail_; }
  const std::vector<EPenny>& credit() const noexcept { return credit_; }
  bool cansend() const noexcept { return cansend_; }
  Money till() const noexcept { return till_; }
  std::uint64_t seq() const noexcept { return seq_; }
  const IspMetrics& metrics() const noexcept { return metrics_; }
  const std::vector<Delivery>& inbox(UserId u) const {
    return inboxes_.at(u.slot());
  }
  void clear_inbox(UserId u) { inboxes_.at(u.slot()).clear(); }
  // E-pennies committed by buffered (not yet transported) sends; free sends
  // to non-compliant destinations buffer without committing an e-penny.
  EPenny buffered_paid() const noexcept { return buffered_paid_; }
  std::size_t buffered_count() const noexcept { return buffer_.size(); }

  // Spam filter consulted for mail from non-compliant ISPs when the policy
  // is kFilter; returns true when the message should be dropped as spam.
  void set_filter(std::function<bool(const net::EmailMessage&)> is_spam) {
    filter_ = std::move(is_spam);
  }

  // Observer for automatically processed acknowledgments (they never reach
  // an inbox); the mailing-list distributor uses this to track which
  // subscribers acknowledged (Section 5).
  void set_ack_sink(
      std::function<void(UserId user, const net::EmailMessage&)> sink) {
    ack_sink_ = std::move(sink);
  }
  // Sum of user balances + avail pool (for conservation checks).
  EPenny epennies_held() const noexcept;

  // Transport-layer events attributed to this ISP's counters (the harness
  // owns the reliable email transport but the metrics live here so obs
  // snapshots and sweep merges pick them up).
  void note_retransmit() {
    ++metrics_.emails_retransmitted;
    log_op(WalOp::kNoteRetransmit);
  }
  void note_duplicate_email() {
    ++metrics_.duplicate_emails_dropped;
    log_op(WalOp::kNoteDupEmail);
  }

  // --- Durability (src/store) ---------------------------------------------
  // The ISP is a deterministic state machine: with a WAL sink attached,
  // every mutating command logs its inputs before applying, and
  // apply_wal_record() re-invokes the same method with the sink detached
  // (so replay does not re-log) and the outbox discarded (replayed output
  // was already transported pre-crash).  serialize_state()/restore_state()
  // capture everything replay depends on — including the RNG and nonce
  // streams — except construction-time inputs (params, bank key, seeds)
  // and the user-facing inbox spool, which is mail storage, not settlement
  // state.  The filter and ack sink callbacks must be re-installed by the
  // harness after restore.
  enum class WalOp : std::uint8_t {
    kUserSend = 1,
    kOnEmail,
    kUserBuy,
    kUserSell,
    kTradePoll,
    kBuyReply,
    kSellReply,
    kSnapshotRequest,
    kQuiesceTimeout,
    kPollRetries,
    kRefundLost,
    kEndOfDay,
    kReleaseUser,
    kNoteRetransmit,
    kNoteDupEmail,
    kSetMisbehavior,
  };
  void attach_wal(store::WalSink* wal) noexcept { wal_ = wal; }
  store::WalSink* wal() const noexcept { return wal_; }
  crypto::Bytes serialize_state() const;
  bool restore_state(const crypto::Bytes& state);
  void apply_wal_record(std::uint8_t op, const crypto::Bytes& payload);

  // Columnar ("ZSNP" v2) snapshot rendition: one scalar-state section plus
  // one raw little-endian section per user column, each with its own CRC.
  // serialize_state()/restore_state() remain the v1 single-blob rendition
  // (WAL-era snapshots, tests, and the row-serialization baseline);
  // checkpoints write sections, and recovery restores them column-direct
  // from a read-only mapping of the snapshot file.
  void serialize_sections(std::vector<store::SnapshotSection>& out) const;
  // A borrowed snapshot section (mmap view or decoded buffer).
  struct RawSection {
    std::uint32_t id = 0;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  bool restore_columnar(const std::vector<RawSection>& sections);
  // Restores from a whole snapshot of either version: v1 state blobs go
  // through restore_state(), v2 columnar sections through
  // restore_columnar() (bulk column copies out of the mapping).
  bool restore_snapshot(const store::SnapshotFileView& view);
  bool restore_snapshot(const store::SnapshotData& snap);

  // Testing hooks.
  void set_avail(EPenny v) noexcept { avail_ = v; }
  void force_cansend(bool v) noexcept { cansend_ = v; }
  // Bootstrap hook: an ISP joining mid-deployment adopts the bank's
  // current snapshot sequence number so it accepts the next request.
  void set_seq(std::uint64_t s) noexcept { seq_ = s; }

  // Misbehavior injection for the Section 4.4 detection experiment: a
  // colluding ISP lets (its spammers') mail out without charging the sender
  // or recording the credit entry.  The receiving ISP still decrements its
  // credit, so the bank's antisymmetry check exposes the pair.
  enum class Misbehavior : std::uint8_t { kNone = 0, kFreeRide };
  void set_misbehavior(Misbehavior m) {
    misbehavior_ = m;
    log_misbehavior(m);
  }
  Misbehavior misbehavior() const noexcept { return misbehavior_; }

 private:
  struct BufferedSend {
    std::size_t dest_isp;
    net::EmailMessage msg;
    bool paid = false;  // carries a committed e-penny
    UserId sender_user = kInvalidUser;
  };

  // An ISP->bank wire kept around for retransmission (retry.enabled only).
  struct PendingWire {
    bool active = false;
    net::MsgType type;
    crypto::Bytes wire;          // cached sealed bytes: retries reuse them
    std::uint32_t attempts = 0;  // sends so far (first send included)
    sim::SimTime next_at = 0;
    std::uint64_t trace_id = 0;  // exchange's trace id; retries re-join it
  };

  void deliver_locally(UserId r, const net::EmailMessage& msg,
                       EPenny paid, bool junk);
  void transport_paid_email(std::size_t dest_isp, const net::EmailMessage& msg,
                            UserId sender_user);
  void maybe_generate_ack(UserId recipient, const net::EmailMessage& msg);
  void send_zombie_warning(UserId s);
  bool commit_paid_send(UserId s);  // balance/limit check + decrement
  bool buffer_full() const noexcept {
    return params_.max_buffered_sends > 0 &&
           buffer_.size() >= params_.max_buffered_sends;
  }
  sim::Duration jittered_backoff(std::uint32_t attempt);
  void arm_retry(PendingWire& p, net::MsgType type, const crypto::Bytes& wire,
                 sim::SimTime now);
  void retry_wire(PendingWire& p, sim::SimTime now, std::uint64_t& counter);
  // WAL logging helpers (no-ops when no sink is attached; isp_persist.cpp).
  void log_op(WalOp op);
  void log_op(WalOp op, const crypto::Bytes& payload);
  void log_misbehavior(Misbehavior m);
  // Shared tail of both snapshot renditions: everything after the per-user
  // state (avail/till/credit, protocol flags, buffers, wires, metrics,
  // RNG/nonce streams).
  void serialize_scalar_tail(crypto::Bytes& b) const;
  bool restore_scalar_tail(crypto::ByteReader& r);

  std::size_t index_;
  const ZmailParams& params_;
  crypto::RsaKey bank_pub_;
  Rng rng_;
  crypto::NonceGenerator nonce_gen_;

  Population users_;
  std::vector<std::vector<Delivery>> inboxes_;
  EPenny avail_ = 0;
  Money till_;  // real money received from users buying e-pennies
  std::vector<EPenny> credit_;

  bool cansend_ = true;
  bool canbuy_ = true;
  bool cansell_ = true;
  bool quiescing_ = false;
  EPenny buyvalue_ = 0;
  EPenny sellvalue_ = 0;
  std::uint64_t seq_ = 0;
  std::optional<crypto::Nonce> ns1_;  // outstanding buy nonce
  std::optional<crypto::Nonce> ns2_;  // outstanding sell nonce

  std::deque<BufferedSend> buffer_;  // held during quiesce
  EPenny buffered_paid_ = 0;
  PendingWire pending_buy_;
  PendingWire pending_sell_;
  PendingWire pending_report_;
  std::vector<Outbound> outbox_;
  std::function<bool(const net::EmailMessage&)> filter_;
  std::function<void(UserId, const net::EmailMessage&)> ack_sink_;
  Misbehavior misbehavior_ = Misbehavior::kNone;
  store::WalSink* wal_ = nullptr;
  IspMetrics metrics_;
  // Open bank-exchange trace spans (zmail::trace).  Deliberately NOT part
  // of serialize_state: a crash orphans the open span, and the validator's
  // crash-forgives rule accounts for it; the reply handlers skip the end
  // emission when the id is 0 (fresh or recovered instance).
  std::uint64_t buy_trace_ = 0;
  std::uint64_t sell_trace_ = 0;
  // Scratch buffers for the bank-message envelope path (see
  // core::seal_into): reused across messages so steady-state traffic stops
  // reallocating.
  crypto::Envelope env_scratch_;
  crypto::Bytes plain_scratch_;
};

}  // namespace zmail::core
