# Federated-bank crash smoke: a member bank dies mid-settlement-round and
# rebuilds from its durable store (snapshot + WAL replay) while its peers'
# column and clearing wires retransmit.  Run with
#
#   ./scenario_runner examples/federated_chaos.zs --banks 4 --audit \
#       --store-dir /tmp/zmail_fed_chaos
#
# retry=1: the inter-bank plane travels as real datagrams and unacked
# wires back off and retransmit, so a crashed bank's round completes
# instead of wedging.
world isps=8 users=4 balance=100 limit=200 seed=4242 retry=1

# Cross-bank mail in both directions (home banks are round-robin, so
# 0->1, 1->2, ... all cross bank boundaries at 4 banks).
send 0.0 1.1 subject hello
send 1.1 2.2 subject hola
send 2.3 3.2 subject hi
send 3.0 4.1 subject hey
send 4.2 5.3 subject yo
send 5.1 6.0 subject hej
send 6.2 7.1 subject ola
send 7.3 0.1 subject re:hello
run 30m
buy 0.2 25
day
run 30m

# First settlement round: verification, column exchange, netted clearing.
snapshot
run 30m
expect violations 0
expect conservation

# Kill member bank 1 for 15 minutes spanning the next round's opening;
# its members sit the round out until it recovers and rejoins.
crash bank1 15m
send 0.0 1.1 subject while-you-were-out
send 5.1 1.2 subject missed-you
snapshot
run 2h
expect conservation

# One more quiet round to show the recovered bank settles cleanly.
snapshot
run 2h
expect violations 0
expect conservation
print balances
