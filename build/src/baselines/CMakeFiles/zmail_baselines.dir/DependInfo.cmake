
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bayes.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/bayes.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/bayes.cpp.o.d"
  "/root/repo/src/baselines/blacklist.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/blacklist.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/blacklist.cpp.o.d"
  "/root/repo/src/baselines/challenge.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/challenge.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/challenge.cpp.o.d"
  "/root/repo/src/baselines/pipeline.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/pipeline.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/pipeline.cpp.o.d"
  "/root/repo/src/baselines/pow_mail.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/pow_mail.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/pow_mail.cpp.o.d"
  "/root/repo/src/baselines/shred.cpp" "src/baselines/CMakeFiles/zmail_baselines.dir/shred.cpp.o" "gcc" "src/baselines/CMakeFiles/zmail_baselines.dir/shred.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zmail_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/zmail_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zmail_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zmail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zmail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/zmail_ap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
