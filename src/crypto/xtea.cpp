#include "crypto/xtea.hpp"

#include "crypto/sha256.hpp"

namespace zmail::crypto {

namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9;
constexpr int kCycles = 32;
}  // namespace

std::uint64_t xtea_encrypt_block(std::uint64_t block,
                                 const XteaKey& key) noexcept {
  auto v0 = static_cast<std::uint32_t>(block >> 32);
  auto v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = 0;
  for (int i = 0; i < kCycles; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

std::uint64_t xtea_decrypt_block(std::uint64_t block,
                                 const XteaKey& key) noexcept {
  auto v0 = static_cast<std::uint32_t>(block >> 32);
  auto v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = kDelta * kCycles;
  for (int i = 0; i < kCycles; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

Bytes xtea_ctr(const Bytes& data, const XteaKey& key,
               std::uint64_t nonce) noexcept {
  Bytes out;
  xtea_ctr_into(data, key, nonce, out);
  return out;
}

void xtea_ctr_into(const Bytes& data, const XteaKey& key, std::uint64_t nonce,
                   Bytes& out) noexcept {
  out.resize(data.size());
  std::uint64_t counter = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t keystream =
        xtea_encrypt_block(nonce ^ counter, key);
    ++counter;
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      const auto ks_byte =
          static_cast<std::uint8_t>(keystream >> (56 - 8 * b));
      out[i] = static_cast<std::uint8_t>(data[i] ^ ks_byte);
    }
  }
}

XteaKey xtea_key_from_bytes(const Bytes& material) noexcept {
  const Digest d = sha256(material);
  XteaKey key{};
  for (int w = 0; w < 4; ++w) {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v = (v << 8) | d[4 * w + b];
    key[static_cast<std::size_t>(w)] = v;
  }
  return key;
}

}  // namespace zmail::crypto
