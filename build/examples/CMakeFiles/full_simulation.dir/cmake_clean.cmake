file(REMOVE_RECURSE
  "CMakeFiles/full_simulation.dir/full_simulation.cpp.o"
  "CMakeFiles/full_simulation.dir/full_simulation.cpp.o.d"
  "full_simulation"
  "full_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
