// Deterministic, seed-driven fault injection for the simulated network.
//
// A FaultPlan describes *what* can go wrong (drop/duplicate/reorder/corrupt/
// truncate/delay-spike rates, host-pair partitions, host crash windows); a
// FaultInjector owns an independent RNG stream and decides, per datagram,
// *whether* it goes wrong.  The Network consults an optional injector at
// send() and deliver() time.  With no injector attached the network draws
// exactly the same RNG sequence and schedules exactly the same events as
// before this layer existed — the fault path is zero-cost-off, so every
// (seed, threads) sweep stays bit-identical with faults disabled.
//
// The injector's RNG is seeded independently of the network's latency
// stream, so the same fault plan replays bit-identically for a given seed
// regardless of sweep thread count (each replica owns its own injector).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/msg_type.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace zmail::net {

using HostId = std::size_t;

// Per-datagram fault probabilities, all default 0 (= fault-free).
struct FaultRates {
  double drop = 0.0;       // datagram silently lost
  double duplicate = 0.0;  // a second copy is sent (own latency/fate)
  double reorder = 0.0;    // per-pair FIFO clamp is skipped for this copy
  double corrupt = 0.0;    // one payload bit is flipped
  double truncate = 0.0;   // payload cut to a random prefix
  double delay_spike = 0.0;           // extra exponential delay is added
  sim::Duration spike_mean = 500 * sim::kMillisecond;
};

// Bidirectional link cut between hosts a and b over [from, until).
struct Partition {
  HostId a = 0;
  HostId b = 0;
  sim::SimTime from = 0;
  sim::SimTime until = 0;
};

// Host crash window [from, until): the host neither sends nor receives.
// Datagrams that would arrive while it is down are lost (the crash drops
// in-flight state) unless FaultPlan::outage_preserves_inflight, in which
// case they are re-queued for delivery just after restart.
struct HostOutage {
  HostId host = 0;
  sim::SimTime from = 0;
  sim::SimTime until = 0;
};

struct FaultPlan {
  FaultRates rates;
  std::vector<Partition> partitions;
  std::vector<HostOutage> outages;
  bool outage_preserves_inflight = false;
  // If non-empty, faults apply only to these datagram types (control traffic
  // can be exempted, or a bench can target e.g. only "buy"/"buyreply").
  std::vector<MsgType> only_types;

  bool applies_to(MsgType t) const noexcept {
    if (only_types.empty()) return true;
    for (MsgType o : only_types)
      if (o == t) return true;
    return false;
  }
};

// Everything the injector did, for liveness/amplification reporting.
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t partitioned = 0;   // sends swallowed by an active partition
  std::uint64_t outage_lost = 0;   // datagrams lost to a crashed host
  std::uint64_t outage_deferred = 0;  // re-queued past a restart instead
  // Host restarts that rebuilt party state from the durable store
  // (snapshot + WAL replay); bumped by the harness, not the injector.
  std::uint64_t state_recoveries = 0;

  std::uint64_t total_injected() const noexcept {
    return dropped + duplicated + reordered + corrupted + truncated +
           delayed + partitioned + outage_lost;
  }
};

// Decides the fate of each datagram.  All randomness comes from a private
// stream so attaching/detaching an injector never perturbs the network's
// latency draws.
class FaultInjector {
 public:
  // What send() should do with one physical copy of a datagram.
  struct Fate {
    bool drop = false;           // swallow silently (counted)
    std::uint32_t copies = 1;    // 2 when duplicated
    bool reorder = false;        // skip the per-pair FIFO clamp
    bool corrupt = false;
    bool truncate = false;
    sim::Duration extra_delay = 0;
  };

  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(seed), rng_(seed) {}

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultCounters& counters() const noexcept { return counters_; }

  // Pair-keyed fate draws: decision k for host pair (from,to) becomes a
  // pure function of (seed, from, to, k) instead of a draw from the shared
  // stream, so a sharded run injects the identical fault pattern at any
  // shard count.  Call after construction, before any traffic; `n_hosts`
  // fixes the pair-counter table.  Legacy single-shard runs never enable
  // this and keep their original stream.
  void enable_keyed(std::size_t n_hosts) {
    keyed_stride_ = n_hosts;
    keyed_draws_.assign(n_hosts * n_hosts, 0);
  }
  bool keyed() const noexcept { return keyed_stride_ != 0; }

  // Send-time decision for a datagram from->to at `now`.
  Fate on_send(sim::SimTime now, HostId from, HostId to, MsgType type);

  // Delivery-time check: is `to` crashed at `now`?  Returns the restart
  // time (> now) if so, 0 if the host is up.  The caller drops or defers
  // based on plan().outage_preserves_inflight and bumps the right counter
  // via note_outage_loss()/note_outage_deferral().
  sim::SimTime down_until(sim::SimTime now, HostId h) const noexcept;
  void note_outage_loss() noexcept { ++counters_.outage_lost; }
  void note_outage_deferral() noexcept { ++counters_.outage_deferred; }
  void note_state_recovery() noexcept { ++counters_.state_recoveries; }

  // Adds a crash window after construction (ZmailSystem::crash_host injects
  // ad-hoc outages this way).  Takes effect for all later fate decisions;
  // safe mid-run because outages are consulted per datagram, not cached.
  void add_outage(const HostOutage& o) { plan_.outages.push_back(o); }

  // Payload mutators (no-ops on empty payloads).
  void corrupt_payload(crypto::Bytes& payload);
  void truncate_payload(crypto::Bytes& payload);

 private:
  bool partitioned(sim::SimTime now, HostId a, HostId b) const noexcept;
  // Stream the next draws should come from: the shared stream, or (keyed
  // mode) the per-pair stream prepared by the latest on_send.  The payload
  // mutators run synchronously right after on_send in Network::send, so
  // routing them through the same per-pair stream keeps corruption bits
  // partition-independent too.
  Rng& draw_rng() noexcept { return keyed_stride_ != 0 ? keyed_rng_ : rng_; }

  FaultPlan plan_;
  std::uint64_t seed_;
  Rng rng_;
  std::size_t keyed_stride_ = 0;
  std::vector<std::uint64_t> keyed_draws_;  // per (from,to) decision counter
  Rng keyed_rng_{0};  // stream for the current keyed decision
  FaultCounters counters_;
};

}  // namespace zmail::net
