#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace zmail::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.dump(0), "null");
}

TEST(JsonValue, Scalars) {
  EXPECT_EQ(Value(true).dump(0), "true");
  EXPECT_EQ(Value(false).dump(0), "false");
  EXPECT_EQ(Value(42).dump(0), "42");
  EXPECT_EQ(Value(-7).dump(0), "-7");
  EXPECT_EQ(Value("hi").dump(0), "\"hi\"");
  EXPECT_EQ(Value(1.5).dump(0), "1.5");
}

TEST(JsonValue, Uint64ExactPrecision) {
  // Values above 2^53 cannot round-trip through double; the writer must
  // print the integer digits exactly.
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(Value(big).dump(0), "18446744073709551615");
  const std::int64_t neg = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(Value(neg).dump(0), "-9223372036854775808");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Value v = Value::object();
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mid"] = 3;
  EXPECT_EQ(v.dump(0), "{\"zebra\":1,\"apple\":2,\"mid\":3}");
}

TEST(JsonValue, IndexingPromotesNull) {
  Value v;  // null
  v["a"]["b"] = 1;  // promotes to object at both levels
  EXPECT_EQ(v.kind(), Value::Kind::kObject);
  EXPECT_EQ(v["a"]["b"].as_int64(), 1);
  Value arr;
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.kind(), Value::Kind::kArray);
  EXPECT_EQ(arr.size(), 2u);
}

TEST(JsonValue, StringEscapes) {
  Value v("line\n\ttab \"quote\" back\\slash \x01");
  const std::string s = v.dump(0);
  EXPECT_EQ(s, "\"line\\n\\ttab \\\"quote\\\" back\\\\slash \\u0001\"");
}

TEST(JsonParse, RoundTrip) {
  Value v = Value::object();
  v["name"] = "e12";
  v["count"] = std::uint64_t{9007199254740993ull};  // 2^53 + 1
  v["pi"] = 3.141592653589793;
  v["flag"] = true;
  v["nothing"] = Value();
  Value& arr = v["xs"];
  for (int i = 0; i < 4; ++i) arr.push_back(i * 10);

  std::string err;
  const auto parsed = parse(v.dump(2), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->dump(2), v.dump(2));
  ASSERT_NE(parsed->find("count"), nullptr);
  EXPECT_EQ(parsed->find("count")->as_uint64(), 9007199254740993ull);
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_double(), 3.141592653589793);
}

TEST(JsonParse, AcceptsEscapesAndUnicode) {
  std::string err;
  const auto v = parse(R"({"s": "a\u0041\n\t\"b\""})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  ASSERT_NE(v->find("s"), nullptr);
  EXPECT_EQ(v->find("s")->as_string(), "aA\n\t\"b\"");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,]", &err).has_value());
  EXPECT_FALSE(parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parse("tru", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(JsonParse, NumbersPickNarrowestKind) {
  std::string err;
  auto v = parse("[1, -1, 1.5, 18446744073709551615, -9223372036854775808]",
                 &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_EQ(v->at(0).as_uint64(), 1u);
  EXPECT_EQ(v->at(1).as_int64(), -1);
  EXPECT_DOUBLE_EQ(v->at(2).as_double(), 1.5);
  EXPECT_EQ(v->at(3).as_uint64(), 18446744073709551615ull);
  EXPECT_EQ(v->at(4).as_int64(), std::numeric_limits<std::int64_t>::min());
}

TEST(JsonParse, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  std::string err;
  EXPECT_FALSE(parse(deep, &err).has_value());
}

TEST(JsonDump, IndentedOutputIsStable) {
  Value v = Value::object();
  v["a"] = 1;
  v["b"].push_back(2);
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

}  // namespace
}  // namespace zmail::json
