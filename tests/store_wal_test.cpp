// WAL framing, group commit, crash semantics, and the torn-write fuzz:
// the log must stop *cleanly* at the last valid LSN no matter where a
// crash truncates — or a bad disk corrupts — the final record.
#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "store/crc32c.hpp"

namespace zmail::store {
namespace {

std::string tmp_path(const std::string& name) {
  return "store_wal_test_" + name + ".zwal";
}

crypto::Bytes payload_for(int i) {
  crypto::Bytes p;
  for (int k = 0; k <= i; ++k) p.push_back(static_cast<std::uint8_t>(i + k));
  return p;
}

struct ScanCapture {
  std::vector<Lsn> lsns;
  std::vector<std::uint8_t> types;
  std::vector<crypto::Bytes> payloads;

  std::function<void(const WalRecord&)> fn() {
    return [this](const WalRecord& r) {
      lsns.push_back(r.lsn);
      types.push_back(r.type);
      payloads.emplace_back(r.payload, r.payload + r.payload_len);
    };
  }
};

TEST(Crc32cTest, KnownVectorsAndSeedChaining) {
  // RFC 3720 test vector: crc32c of "123456789" is 0xE3069283.
  const char* digits = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
  // An all-zero 32-byte block (iSCSI vector).
  const std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, 32), 0x8A9136AAu);
  // Seeding with a finalized crc chains: crc(a||b) == crc(b, crc(a)).
  EXPECT_EQ(crc32c(digits + 4, 5, crc32c(digits, 4)), 0xE3069283u);
}

TEST(WalWriterTest, AppendSyncReopenRoundTrip) {
  const std::string path = tmp_path("roundtrip");
  std::remove(path.c_str());
  {
    WalWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, 1, true, &err)) << err;
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(w.append_record(static_cast<std::uint8_t>(10 + i),
                                payload_for(i)),
                static_cast<Lsn>(i + 1));
    // group_commit_records == 1: every append is synced immediately.
    EXPECT_EQ(w.durable_lsn(), 5u);
    EXPECT_EQ(w.next_lsn(), 6u);
  }
  crypto::Bytes file;
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  ScanCapture cap;
  const WalScanResult r = wal_scan(file, cap.fn());
  EXPECT_EQ(r.status, StoreStatus::kOk);
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.base_lsn, 1u);
  EXPECT_EQ(r.last_lsn, 5u);
  EXPECT_EQ(r.valid_bytes, file.size());
  ASSERT_EQ(cap.lsns.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cap.lsns[i], static_cast<Lsn>(i + 1));
    EXPECT_EQ(cap.types[i], static_cast<std::uint8_t>(10 + i));
    EXPECT_EQ(cap.payloads[i], payload_for(i));
  }

  // Reopening resumes at the next LSN and keeps appending.
  WalWriter w2;
  std::string err;
  ASSERT_TRUE(w2.open(path, 1, true, &err)) << err;
  EXPECT_EQ(w2.next_lsn(), 6u);
  EXPECT_EQ(w2.append_record(99, payload_for(6)), 6u);
  std::remove(path.c_str());
}

TEST(WalWriterTest, GroupCommitBuffersUntilTheCadence) {
  const std::string path = tmp_path("groupcommit");
  std::remove(path.c_str());
  WalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, 4, true, &err)) << err;
  w.append_record(1, payload_for(0));
  w.append_record(1, payload_for(1));
  w.append_record(1, payload_for(2));
  EXPECT_EQ(w.durable_lsn(), 0u);  // still buffered
  crypto::Bytes file;
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  EXPECT_EQ(wal_scan(file).records, 0u);  // nothing on disk yet

  w.append_record(1, payload_for(3));  // 4th record: cadence reached
  EXPECT_EQ(w.durable_lsn(), 4u);
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  EXPECT_EQ(wal_scan(file).records, 4u);

  // Explicit sync flushes a partial group.
  w.append_record(1, payload_for(4));
  EXPECT_EQ(w.durable_lsn(), 4u);
  w.sync();
  EXPECT_EQ(w.durable_lsn(), 5u);
  std::remove(path.c_str());
}

TEST(WalWriterTest, SimulateCrashDropsTheUnsyncedTail) {
  const std::string path = tmp_path("crash");
  std::remove(path.c_str());
  WalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, 64, true, &err)) << err;
  w.append_record(1, payload_for(0));
  w.append_record(2, payload_for(1));
  w.sync();  // LSNs 1-2 durable
  w.append_record(3, payload_for(2));
  w.append_record(4, payload_for(3));
  EXPECT_EQ(w.next_lsn(), 5u);

  w.simulate_crash();
  EXPECT_EQ(w.durable_lsn(), 2u);
  EXPECT_EQ(w.next_lsn(), 3u);  // LSN sequence resumes after the loss

  w.append_record(5, payload_for(9));
  w.sync();
  crypto::Bytes file;
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  ScanCapture cap;
  const WalScanResult r = wal_scan(file, cap.fn());
  EXPECT_EQ(r.status, StoreStatus::kOk);
  ASSERT_EQ(r.records, 3u);
  EXPECT_EQ(cap.types[2], 5u);  // the post-crash record took LSN 3
  std::remove(path.c_str());
}

TEST(WalWriterTest, TruncateBehindCheckpointAdvancesBaseLsn) {
  const std::string path = tmp_path("truncate");
  std::remove(path.c_str());
  WalWriter w;
  std::string err;
  ASSERT_TRUE(w.open(path, 1, true, &err)) << err;
  for (int i = 0; i < 7; ++i) w.append_record(1, payload_for(i));
  ASSERT_TRUE(w.truncate_behind_checkpoint(&err)) << err;
  EXPECT_EQ(w.next_lsn(), 8u);  // LSNs stay monotonic across truncation

  crypto::Bytes file;
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  WalScanResult r = wal_scan(file);
  EXPECT_EQ(r.status, StoreStatus::kOk);
  EXPECT_EQ(r.records, 0u);
  EXPECT_EQ(r.base_lsn, 8u);

  w.append_record(1, payload_for(7));
  ASSERT_EQ(read_file(path, file), StoreStatus::kOk);
  r = wal_scan(file);
  EXPECT_EQ(r.records, 1u);
  EXPECT_EQ(r.last_lsn, 8u);
  std::remove(path.c_str());
}

// The satellite fuzz: cut the file at *every* byte offset of the final
// record, and separately flip a bit at every byte offset of the final
// record.  Every mangled file must scan to exactly the first two records
// and reopen ready to append LSN 3 — a torn tail is data loss, never an
// open error and never a phantom record.
TEST(WalTornWriteFuzz, EveryTruncationAndCorruptionStopsAtLastValidLsn) {
  const std::string path = tmp_path("fuzz");
  std::remove(path.c_str());
  crypto::Bytes intact;
  std::size_t final_record_start = 0;
  {
    WalWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, 1, true, &err)) << err;
    w.append_record(7, payload_for(0));
    w.append_record(8, payload_for(1));
    ASSERT_EQ(read_file(path, intact), StoreStatus::kOk);
    final_record_start = intact.size();
    w.append_record(9, payload_for(2));
  }
  ASSERT_EQ(read_file(path, intact), StoreStatus::kOk);
  ASSERT_GT(intact.size(), final_record_start);

  const auto check_mangled = [&](const crypto::Bytes& mangled,
                                 const char* what, std::size_t off) {
    ScanCapture cap;
    const WalScanResult r = wal_scan(mangled, cap.fn());
    EXPECT_TRUE(r.status == StoreStatus::kOk ||
                r.status == StoreStatus::kTruncated ||
                r.status == StoreStatus::kCorrupt)
        << what << " at offset " << off;
    EXPECT_EQ(r.records, 2u) << what << " at offset " << off;
    EXPECT_EQ(r.last_lsn, 2u) << what << " at offset " << off;
    ASSERT_EQ(cap.lsns.size(), 2u) << what << " at offset " << off;
    EXPECT_EQ(cap.payloads[1], payload_for(1));

    // The recovery path proper: opening the mangled file trims the tail
    // and resumes the LSN sequence right after the last valid record.
    const std::string mp = tmp_path("fuzz_mangled");
    std::remove(mp.c_str());
    {
      FILE* f = std::fopen(mp.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!mangled.empty()) {
        ASSERT_EQ(std::fwrite(mangled.data(), 1, mangled.size(), f),
                  mangled.size());
      }
      std::fclose(f);
    }
    WalWriter w;
    std::string err;
    ASSERT_TRUE(w.open(mp, 1, true, &err))
        << what << " at offset " << off << ": " << err;
    EXPECT_EQ(w.next_lsn(), 3u) << what << " at offset " << off;
    std::remove(mp.c_str());
  };

  // Truncation at every byte of the final record (including cutting it off
  // entirely at final_record_start).
  for (std::size_t cut = final_record_start; cut < intact.size(); ++cut) {
    crypto::Bytes mangled(intact.begin(),
                          intact.begin() + static_cast<std::ptrdiff_t>(cut));
    check_mangled(mangled, "truncate", cut);
  }

  // Single-bit corruption at every byte of the final record.
  for (std::size_t off = final_record_start; off < intact.size(); ++off) {
    crypto::Bytes mangled = intact;
    mangled[off] ^= 0x10;
    check_mangled(mangled, "corrupt", off);
  }
  std::remove(path.c_str());
}

TEST(WalScanTest, DamagedHeaderRejectsAndOpenRestartsTheLog) {
  const std::string path = tmp_path("header");
  std::remove(path.c_str());
  crypto::Bytes intact;
  {
    WalWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, 1, true, &err)) << err;
    w.append_record(1, payload_for(0));
  }
  ASSERT_EQ(read_file(path, intact), StoreStatus::kOk);

  crypto::Bytes bad_magic = intact;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(wal_scan(bad_magic).status, StoreStatus::kBadMagic);

  crypto::Bytes bad_crc = intact;
  bad_crc[8] ^= 0x01;  // inside base_lsn, breaks the header crc
  EXPECT_EQ(wal_scan(bad_crc).status, StoreStatus::kCorrupt);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zmail::store
