// Synthetic email corpus generator.
//
// The paper's filtering discussion (Section 2.2) needs a corpus with
// separable-but-overlapping ham and spam vocabularies, solicited
// newsletters that *look* spammy (the false-positive victims), and the
// misspelling evasion trick ("spell 'sex' as 'se><'").  Real 2004 spam
// corpora are not redistributable here, so we generate one with controlled
// statistics: both vocabularies are synthetic token sets with Zipfian
// frequencies and a tunable overlap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/email.hpp"
#include "util/rng.hpp"

namespace zmail::workload {

struct CorpusParams {
  std::size_t ham_vocab = 800;
  std::size_t spam_vocab = 300;
  // Fraction of a spam message's tokens drawn from the ham vocabulary
  // (higher = harder classification).
  double spam_ham_mix = 0.35;
  // Newsletters draw mostly ham tokens but with this much spam-vocabulary
  // contamination ("FREE offer inside!") — the false-positive trap.
  double newsletter_spam_mix = 0.25;
  std::size_t tokens_per_message = 60;
  double zipf_exponent = 1.1;
};

class CorpusGenerator {
 public:
  CorpusGenerator(const CorpusParams& params, zmail::Rng rng);

  // Message bodies (space-separated tokens) by class.
  std::string ham_body();
  std::string spam_body();
  std::string newsletter_body();

  // Applies the evasion transform: each spam-vocabulary token is
  // obfuscated (character substitutions) with probability `strength`.
  std::string evade(const std::string& body, double strength);

  // Full messages with subjects, for end-to-end runs.
  net::EmailMessage make_message(const net::EmailAddress& from,
                                 const net::EmailAddress& to,
                                 net::MailClass cls);

  // The generator's notion of whether a token came from the spam vocabulary
  // (used by tests to validate corpus statistics).
  bool is_spam_token(const std::string& token) const;

 private:
  std::string token(bool spam_vocab, std::uint64_t rank) const;
  std::string draw_body(double spam_fraction);

  CorpusParams params_;
  zmail::Rng rng_;
};

// Tokenizer shared with the Bayes filter: lowercases, splits on
// non-alphanumerics, keeps tokens of length >= 2.
std::vector<std::string> tokenize(const std::string& text);

}  // namespace zmail::workload
