// Property tests over the Abstract-Protocol rendition of Zmail: safety
// invariants must hold under arbitrary (randomized) interleavings.
#include "core/ap_spec.hpp"

#include <gtest/gtest.h>

namespace zmail::core {
namespace {

ZmailParams ap_params(std::size_t n = 3) {
  ZmailParams p;
  p.n_isps = n;
  p.users_per_isp = 3;
  p.initial_user_balance = 20;
  p.initial_avail = 100;
  p.minavail = 20;
  p.maxavail = 500;
  p.default_daily_limit = 1'000;
  return p;
}

TEST(ApSpec, RunsToQuiescenceWithBudgets) {
  ApZmailWorld world(ap_params(), ap::Scheduler::Policy::kRoundRobin, 1);
  for (std::size_t i = 0; i < 3; ++i) world.isp(i).send_budget = 50;
  world.bank().snapshot_budget = 1;
  const std::uint64_t steps = world.run();
  EXPECT_GT(steps, 0u);
  EXPECT_TRUE(world.scheduler().all_channels_empty());
  EXPECT_EQ(world.bank().rounds_completed, 1u);
}

TEST(ApSpec, EmailsAreDelivered) {
  ApZmailWorld world(ap_params(), ap::Scheduler::Policy::kRoundRobin, 2);
  for (std::size_t i = 0; i < 3; ++i) world.isp(i).send_budget = 100;
  world.run();
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < 3; ++i) delivered += world.isp(i).emails_delivered;
  EXPECT_GT(delivered, 100u);
}

// E-penny conservation: minted - burned accounts exactly for the change in
// total supply, under any interleaving.
class ApConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApConservationTest, SupplyBalancesUnderRandomSchedules) {
  const ZmailParams p = ap_params(4);
  ApZmailWorld world(p, ap::Scheduler::Policy::kRandom, GetParam());
  const EPenny initial = world.total_epennies();
  for (std::size_t i = 0; i < 4; ++i) {
    world.isp(i).send_budget = 80;
    world.isp(i).user_trade_budget = 40;
  }
  world.bank().snapshot_budget = 2;
  world.run();
  EXPECT_TRUE(world.scheduler().all_channels_empty());
  EXPECT_EQ(world.total_epennies(),
            initial + world.epennies_minted() - world.epennies_burned());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApConservationTest,
                         ::testing::Range<std::uint64_t>(100, 112));

// Stronger: conservation is not just a quiescent-state property — it holds
// after EVERY single action, for any interleaving (e-pennies in flight are
// counted inside channels).  Bank trade is excluded here on purpose: a
// buy/sell necessarily has a window where supply sits inside a sealed
// reply (minted at the bank, credited on consumption); the quiescent-state
// test above covers that path.  This test pins down mail, user trades,
// and snapshots.
class ApStepwiseConservationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApStepwiseConservationTest, SupplyBalancesAfterEveryStep) {
  ZmailParams p = ap_params(3);
  p.minavail = 0;                // never buy from the bank
  p.maxavail = 1'000'000'000;    // never sell to the bank
  ApZmailWorld world(p, ap::Scheduler::Policy::kRandom, GetParam());
  const EPenny initial = world.total_epennies();
  for (std::size_t i = 0; i < 3; ++i) {
    world.isp(i).send_budget = 40;
    world.isp(i).user_trade_budget = 20;
  }
  world.bank().snapshot_budget = 1;
  std::uint64_t steps = 0;
  while (world.scheduler().step() && steps < 3'000) {
    ++steps;
    ASSERT_EQ(world.total_epennies(),
              initial + world.epennies_minted() - world.epennies_burned())
        << "broken after step " << steps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApStepwiseConservationTest,
                         ::testing::Values(500, 501, 502));

// Credit antisymmetry: after a full snapshot round with honest ISPs, the
// bank finds no violations — under any interleaving of sends, receives,
// trades, and the snapshot itself.
class ApAntisymmetryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApAntisymmetryTest, HonestWorldHasNoViolations) {
  ApZmailWorld world(ap_params(4), ap::Scheduler::Policy::kRandom, GetParam());
  for (std::size_t i = 0; i < 4; ++i) world.isp(i).send_budget = 60;
  world.bank().snapshot_budget = 3;
  world.run();
  EXPECT_GE(world.bank().rounds_completed, 1u);
  EXPECT_TRUE(world.bank().violations.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApAntisymmetryTest,
                         ::testing::Range<std::uint64_t>(200, 212));

// Liveness under weak fairness: every email that was sent out is
// eventually received — no message is stranded in a channel.
class ApLivenessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApLivenessTest, AllSentMailIsEventuallyDelivered) {
  ApZmailWorld world(ap_params(4), ap::Scheduler::Policy::kRandom,
                     GetParam());
  for (std::size_t i = 0; i < 4; ++i) world.isp(i).send_budget = 70;
  world.bank().snapshot_budget = 2;
  world.run();
  ASSERT_TRUE(world.scheduler().all_channels_empty());
  std::uint64_t sent_out = 0, received = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    sent_out += world.isp(i).emails_sent_out;
    received += world.isp(i).emails_received;
  }
  EXPECT_GT(sent_out, 0u);
  EXPECT_EQ(received, sent_out);  // every channel message was consumed
  EXPECT_EQ(world.scheduler().total_messages_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApLivenessTest,
                         ::testing::Range<std::uint64_t>(600, 606));

// Misbehavior detection: a free-riding ISP is flagged as long as it
// actually shipped unpaid mail to a compliant peer.
class ApCheatDetectionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApCheatDetectionTest, FreeRiderIsFlagged) {
  ApZmailWorld world(ap_params(3), ap::Scheduler::Policy::kRandom, GetParam());
  world.isp(0).cheat_free_ride = true;
  for (std::size_t i = 0; i < 3; ++i) world.isp(i).send_budget = 60;
  world.run();  // traffic first, snapshot after: all mail received
  world.bank().snapshot_budget = 1;
  world.run();
  ASSERT_EQ(world.bank().rounds_completed, 1u);
  if (world.isp(0).emails_sent_out > 0) {
    ASSERT_FALSE(world.bank().violations.empty());
    for (const auto& v : world.bank().violations) EXPECT_EQ(v.i, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApCheatDetectionTest,
                         ::testing::Range<std::uint64_t>(300, 310));

// The paper-literal sell path: avail is decremented only at sellreply, so a
// user purchase between `sell` and `sellreply` can drive the pool negative.
// This demonstrates the latent race the production Isp fixes by reserving.
TEST(ApSpec, PaperLiteralSellRaceCanUnderflowAvail) {
  ZmailParams p = ap_params(1);
  p.users_per_isp = 1;
  p.initial_avail = 120;
  p.maxavail = 100;   // above max: the ISP will sell 1..20
  p.minavail = 0;
  ApZmailWorld world(p, ap::Scheduler::Policy::kRoundRobin, 5);
  ApIspProcess& isp = world.isp(0);
  isp.account[0] = 1'000'000;  // user is rich

  bool underflow_seen = false;
  std::uint64_t steps = 0;
  // Drive manually: let the sell go out, then have the user drain the pool
  // before the reply is consumed.
  while (steps < 10'000 && !underflow_seen) {
    if (!isp.cansell && isp.avail > 0) {
      // Sell is in flight; the user buys everything left in the pool.
      isp.balance[0] += isp.avail;
      isp.account[0] -= isp.avail;
      isp.avail = 0;
    }
    if (!world.scheduler().step()) break;
    ++steps;
    if (isp.avail < 0) underflow_seen = true;
  }
  EXPECT_TRUE(underflow_seen)
      << "paper-literal sell should underflow when users buy mid-flight";
}

// Replay attack on the AP world's bank channel: duplicated buyreply is
// ignored thanks to the nonce check.
TEST(ApSpec, DuplicatedBuyReplyIsIgnored) {
  ZmailParams p = ap_params(1);
  p.initial_avail = 5;
  p.minavail = 10;  // forces a buy immediately
  p.maxavail = 50;
  ApZmailWorld world(p, ap::Scheduler::Policy::kRoundRobin, 6);
  ApIspProcess& isp = world.isp(0);
  isp.send_budget = 0;

  // Step until the bank's reply is sitting in the channel.
  ap::Scheduler& sched = world.scheduler();
  ap::Channel& reply_channel =
      sched.channel(world.bank_pid(), world.isp_pid(0));
  std::uint64_t guard = 0;
  while (reply_channel.empty() && guard++ < 1'000) sched.step();
  ASSERT_FALSE(reply_channel.empty());

  // Adversary duplicates the reply datagram.
  reply_channel.push(reply_channel.front());
  world.run();
  // Every accepted buy mints exactly what it credits; a successful replay
  // would credit avail without minting and break this identity.
  EXPECT_EQ(isp.avail, 5 + world.epennies_minted());
  EXPECT_GE(isp.bad_nonce_replies, 1u);
}

TEST(ApSpec, NonCompliantIspsParticipateAsLegacy) {
  ZmailParams p = ap_params(3);
  p.compliant = {true, true, false};
  ApZmailWorld world(p, ap::Scheduler::Policy::kRoundRobin, 7);
  for (std::size_t i = 0; i < 3; ++i) world.isp(i).send_budget = 50;
  world.bank().snapshot_budget = 1;
  world.run();
  EXPECT_TRUE(world.bank().violations.empty());
  EXPECT_EQ(world.bank().rounds_completed, 1u);
  // Legacy ISP delivered mail without balances changing.
  const ApIspProcess& legacy = world.isp(2);
  for (EPenny b : legacy.balance) EXPECT_EQ(b, p.initial_user_balance);
}

TEST(ApSpec, DailyResetClearsSentArray) {
  ApZmailWorld world(ap_params(2), ap::Scheduler::Policy::kRoundRobin, 8);
  world.isp(0).send_budget = 30;
  world.run();
  bool any_sent = false;
  for (auto s : world.isp(0).sent) any_sent |= s > 0;
  EXPECT_TRUE(any_sent);
  world.isp(0).day_pending = true;
  world.run();
  for (auto s : world.isp(0).sent) EXPECT_EQ(s, 0);
}

TEST(ApSpec, SnapshotResetsCreditArrays) {
  ApZmailWorld world(ap_params(2), ap::Scheduler::Policy::kRoundRobin, 9);
  world.isp(0).send_budget = 40;
  world.isp(1).send_budget = 40;
  world.run();
  world.bank().snapshot_budget = 1;
  world.run();
  for (std::size_t i = 0; i < 2; ++i)
    for (EPenny c : world.isp(i).credit) EXPECT_EQ(c, 0);
  EXPECT_EQ(world.isp(0).seq, 1u);
  EXPECT_EQ(world.bank().seq, 1u);
}

}  // namespace
}  // namespace zmail::core
