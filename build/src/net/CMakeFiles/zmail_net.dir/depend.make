# Empty dependencies file for zmail_net.
# This may be replaced when dependencies are built.
