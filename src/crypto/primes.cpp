#include "crypto/primes.hpp"

#include "util/assert.hpp"

namespace zmail::crypto {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                     std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      static_cast<__uint128_t>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                     std::uint64_t m) noexcept {
  ZMAIL_ASSERT(m != 0);
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {
// Single Miller-Rabin round with witness a; n odd, n > 2.
bool miller_rabin_round(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                        int r) noexcept {
  std::uint64_t x = powmod(a % n, d, n);
  if (x == 0 || x == 1 || x == n - 1) return true;
  for (int i = 0; i < r - 1; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}
}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Write n-1 = d * 2^r.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair).
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL,
                          9780504ULL, 1795265022ULL}) {
    if (a % n == 0) continue;
    if (!miller_rabin_round(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t random_prime(zmail::Rng& rng, int bits) noexcept {
  ZMAIL_ASSERT(bits >= 2 && bits <= 62);
  const std::uint64_t lo = 1ULL << (bits - 1);
  const std::uint64_t hi = (1ULL << bits) - 1;
  for (;;) {
    std::uint64_t candidate =
        lo + rng.next_below(hi - lo + 1);
    candidate |= 1;  // odd
    if (is_prime_u64(candidate)) return candidate;
  }
}

std::int64_t egcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                  std::int64_t& y) noexcept {
  if (b == 0) {
    x = 1;
    y = 0;
    return a;
  }
  std::int64_t x1 = 0, y1 = 0;
  const std::int64_t g = egcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

std::uint64_t modinv(std::uint64_t a, std::uint64_t m) noexcept {
  std::int64_t x = 0, y = 0;
  const std::int64_t g =
      egcd(static_cast<std::int64_t>(a), static_cast<std::int64_t>(m), x, y);
  ZMAIL_ASSERT_MSG(g == 1, "modular inverse requires coprime inputs");
  const auto mi = static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(((x % mi) + mi) % mi);
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace zmail::crypto
