// Unit tests for zmail::telemetry primitives: point merging, downsampling
// rings, log-bucket histograms, probe hysteresis and wildcard matching, the
// CSV round trip, and merge/derive idempotency.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"

namespace zmail::telemetry {
namespace {

Point pt(std::int64_t t_us, double value) {
  Point p;
  p.t_us = t_us;
  p.value = value;
  return p;
}

Series gauge_series(std::string scope, std::string name,
                    const std::vector<double>& values,
                    std::int64_t step_us = 60'000'000) {
  Series s;
  s.scope = std::move(scope);
  s.name = std::move(name);
  s.kind = Kind::kGauge;
  for (std::size_t i = 0; i < values.size(); ++i)
    s.points.push_back(pt(static_cast<std::int64_t>(i + 1) * step_us,
                          values[i]));
  return s;
}

TEST(MergePoints, GaugeKeepsLaterValue) {
  const Point m = merge_points(Kind::kGauge, pt(60, 5.0), pt(120, 7.0));
  EXPECT_EQ(m.t_us, 120);
  EXPECT_DOUBLE_EQ(m.value, 7.0);
}

TEST(MergePoints, RateSumsWindowDeltas) {
  const Point m = merge_points(Kind::kRate, pt(60, 5.0), pt(120, 7.0));
  EXPECT_EQ(m.t_us, 120);
  EXPECT_DOUBLE_EQ(m.value, 12.0);
}

TEST(MergePoints, HistogramCombinesCountWeighted) {
  Point a = pt(60, 0.0);
  a.count = 1;
  a.sum = 100.0;
  a.min = a.max = 100.0;
  a.p50 = a.p99 = 96.0;
  Point b = pt(120, 0.0);
  b.count = 3;
  b.sum = 900.0;
  b.min = 200.0;
  b.max = 400.0;
  b.p50 = b.p99 = 384.0;
  const Point m = merge_points(Kind::kHistogram, a, b);
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.sum, 1000.0);
  EXPECT_DOUBLE_EQ(m.min, 100.0);
  EXPECT_DOUBLE_EQ(m.max, 400.0);
  EXPECT_DOUBLE_EQ(m.p50, (96.0 * 1 + 384.0 * 3) / 4.0);
}

TEST(DownsamplingRing, HalvesResolutionAtCapacity) {
  DownsamplingRing r(Kind::kRate, 4);
  for (int i = 1; i <= 4; ++i) r.append(pt(i * 60, 1.0));
  // Hitting capacity compacts immediately: 4 raw points -> 2 level-1 pairs.
  EXPECT_EQ(r.level(), 1u);
  ASSERT_EQ(r.points().size(), 2u);
  EXPECT_DOUBLE_EQ(r.points()[0].value, 2.0);
  EXPECT_EQ(r.points()[0].t_us, 120);
  // At level 1 each stored point folds two appends; the first append of a
  // pair stays in the accumulator.
  r.append(pt(300, 1.0));
  EXPECT_EQ(r.points().size(), 2u);
  r.append(pt(360, 1.0));
  ASSERT_EQ(r.points().size(), 3u);
  EXPECT_DOUBLE_EQ(r.points()[2].value, 2.0);
  EXPECT_EQ(r.points()[2].t_us, 360);
}

TEST(DownsamplingRing, RateMassPreservedThroughManyLevels) {
  DownsamplingRing r(Kind::kRate, 8);
  const int n = 1000;
  for (int i = 1; i <= n; ++i) r.append(pt(i * 60, 1.0));
  EXPECT_LE(r.points().size(), 8u);
  EXPECT_EQ(r.appended(), static_cast<std::uint64_t>(n));
  double stored = 0.0;
  for (const Point& p : r.points()) stored += p.value;
  // Everything not yet stored sits in the partial fold of the next point,
  // which holds fewer than 2^level samples.
  const double pending = static_cast<double>(n) - stored;
  EXPECT_GE(pending, 0.0);
  EXPECT_LT(pending, static_cast<double>(1u << r.level()));
}

TEST(DownsamplingRing, DeterministicFunctionOfAppendStream) {
  DownsamplingRing a(Kind::kGauge, 16), b(Kind::kGauge, 16);
  for (int i = 1; i <= 777; ++i) {
    const Point p = pt(i * 60, static_cast<double>(i % 13));
    a.append(p);
    b.append(p);
  }
  EXPECT_EQ(a.points(), b.points());
  EXPECT_EQ(a.level(), b.level());
}

TEST(LogHistogram, FlushSummarizesAndResets) {
  LogHistogram h;
  h.record(100);   // bucket 6  [64, 128)
  h.record(200);   // bucket 7  [128, 256)
  h.record(1000);  // bucket 9  [512, 1024)
  ASSERT_EQ(h.count(), 3u);
  const Point p = h.flush(60'000'000);
  EXPECT_EQ(p.t_us, 60'000'000);
  EXPECT_EQ(p.count, 3u);
  EXPECT_DOUBLE_EQ(p.sum, 1300.0);
  EXPECT_DOUBLE_EQ(p.min, 100.0);
  EXPECT_DOUBLE_EQ(p.max, 1000.0);
  // Percentiles land on the geometric bucket midpoint 1.5 * 2^b.
  EXPECT_DOUBLE_EQ(p.p50, 1.5 * 128.0);
  EXPECT_DOUBLE_EQ(p.p99, 1.5 * 512.0);
  EXPECT_DOUBLE_EQ(p.value, p.p99);
  EXPECT_TRUE(h.empty());
}

TEST(Probes, FireAndClearHysteresis) {
  // fire_for = 2: one breach is noise, two consecutive fire; clear_for = 2.
  ProbeRule rule{"wal", "store.bank.wal_backlog_records", Agg::kLast,
                 Cmp::kGt, 400.0, 1, 2, 2};
  const Series s = gauge_series("store", "bank.wal_backlog_records",
                                {100, 500, 500, 100, 100, 100});
  const ProbeStatus st = evaluate_rule(rule, s);
  EXPECT_TRUE(st.evaluated);
  EXPECT_EQ(st.evaluations, 6u);
  EXPECT_EQ(st.breaches, 2u);
  ASSERT_EQ(st.transitions.size(), 2u);
  EXPECT_TRUE(st.transitions[0].fired);
  EXPECT_EQ(st.transitions[0].t_us, 3 * 60'000'000);   // second breach
  EXPECT_FALSE(st.transitions[1].fired);
  EXPECT_EQ(st.transitions[1].t_us, 5 * 60'000'000);   // second OK
  EXPECT_FALSE(st.firing);
}

TEST(Probes, SingleBreachBelowFireForNeverFires) {
  ProbeRule rule{"wal", "store.bank.wal_backlog_records", Agg::kLast,
                 Cmp::kGt, 400.0, 1, 2, 2};
  const Series s = gauge_series("store", "bank.wal_backlog_records",
                                {100, 500, 100, 500, 100});
  const ProbeStatus st = evaluate_rule(rule, s);
  EXPECT_EQ(st.breaches, 2u);
  EXPECT_TRUE(st.transitions.empty());
  EXPECT_FALSE(st.firing);
}

TEST(Probes, StillFiringWithoutEnoughClears) {
  ProbeRule rule{"wal", "store.bank.wal_backlog_records", Agg::kLast,
                 Cmp::kGt, 400.0, 1, 2, 2};
  const Series s = gauge_series("store", "bank.wal_backlog_records",
                                {500, 500, 100});  // one OK < clear_for
  const ProbeStatus st = evaluate_rule(rule, s);
  ASSERT_EQ(st.transitions.size(), 1u);
  EXPECT_TRUE(st.firing);
}

TEST(Probes, WindowClampsAtSeriesHead) {
  // Mean over a 3-point window; the first evaluations see shorter windows.
  ProbeRule rule{"m", "econ.isp0.x", Agg::kMean, Cmp::kGt, 100.0, 3, 1, 1};
  const Series s = gauge_series("econ", "isp0.x", {300, 0, 0, 0});
  const ProbeStatus st = evaluate_rule(rule, s);
  // Evaluations: mean(300)=300 breach; mean(300,0)=150 breach;
  // mean(300,0,0)=100 ok; mean(0,0,0)=0 ok.
  EXPECT_EQ(st.evaluations, 4u);
  EXPECT_EQ(st.breaches, 2u);
  ASSERT_EQ(st.transitions.size(), 2u);
}

TEST(Probes, SlopeNeedsTwoPoints) {
  ProbeRule rule{"d", "econ.total.conservation_gap", Agg::kSlopePerSec,
                 Cmp::kGt, 0.01, 10, 1, 1};
  const Series one = gauge_series("econ", "total.conservation_gap", {5});
  EXPECT_TRUE(evaluate_rule(rule, one).transitions.empty());
  // 60 e-pennies per minute = 1/s, way over the 0.01/s drift threshold.
  const Series two =
      gauge_series("econ", "total.conservation_gap", {0, 60, 120});
  const ProbeStatus st = evaluate_rule(rule, two);
  EXPECT_EQ(st.times_fired(), 1u);
  EXPECT_TRUE(st.firing);
}

TEST(Probes, WildcardMatchesEveryConcreteSeries) {
  ProbeEngine engine;
  engine.add_rule(ProbeRule{"wal", "store.*.wal_backlog_records", Agg::kLast,
                            Cmp::kGt, 400.0, 1, 1, 1});
  std::vector<Series> series;
  series.push_back(gauge_series("store", "isp0.wal_backlog_records", {500}));
  series.push_back(gauge_series("store", "isp1.wal_backlog_records", {100}));
  series.push_back(gauge_series("store", "isp0.checkpoints", {1}));
  const ProbeReport r = engine.evaluate(series, /*log_transitions=*/false);
  ASSERT_EQ(r.probes.size(), 2u);  // one status per matching series
  EXPECT_EQ(r.probes[0].rule.series, "store.isp0.wal_backlog_records");
  EXPECT_TRUE(r.probes[0].firing);
  EXPECT_EQ(r.probes[1].rule.series, "store.isp1.wal_backlog_records");
  EXPECT_FALSE(r.probes[1].firing);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.firing_count(), 1u);
}

TEST(Probes, UnmatchedRuleIsNoDataNotFailure) {
  ProbeEngine engine;
  engine.add_rule(ProbeRule{"lat", "core.*.delivery_latency_us", Agg::kMax,
                            Cmp::kGt, 9e8, 5, 1, 1});
  const ProbeReport r = engine.evaluate({}, false);
  ASSERT_EQ(r.probes.size(), 1u);
  EXPECT_FALSE(r.probes[0].evaluated);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.evaluated_count(), 0u);
}

// A small registry with one gauge, one rate, and one histogram channel,
// sampled over a few windows.
std::vector<Series> sampled_registry_series() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  TelemetryRegistry reg(cfg);
  double level = 10.0;
  double counter = 0.0;
  reg.add_gauge("econ", "isp0.stamp_price_micros", [&] { return level; });
  reg.add_rate("core", "isp0.delivered", [&] { return counter; });
  const std::size_t ch = reg.add_histogram("core", "isp0.delivery_latency_us");
  for (int w = 1; w <= 5; ++w) {
    level += 1.0;
    counter += static_cast<double>(w);
    reg.observe(ch, static_cast<std::uint64_t>(100 * w));
    reg.sample(static_cast<sim::SimTime>(w) * 60'000'000);
  }
  return reg.collect();
}

TEST(Export, CsvRoundTripsExactly) {
  const std::vector<Series> before = sampled_registry_series();
  const std::string path =
      (std::filesystem::temp_directory_path() / "zmail_telemetry_rt.csv")
          .string();
  std::string err;
  ASSERT_TRUE(write_csv(path, before, &err)) << err;
  std::vector<Series> after;
  ASSERT_TRUE(load_csv(path, &after, &err)) << err;
  std::remove(path.c_str());

  ASSERT_EQ(after.size(), before.size());
  std::map<std::string, const Series*> by_key;
  for (const Series& s : after) by_key[s.key()] = &s;
  for (const Series& s : before) {
    ASSERT_TRUE(by_key.count(s.key())) << s.key();
    const Series& r = *by_key[s.key()];
    EXPECT_EQ(r.kind, s.kind) << s.key();
    EXPECT_EQ(r.engine, s.engine) << s.key();
    EXPECT_EQ(r.points, s.points) << s.key();  // %.17g round-trips doubles
  }
}

TEST(Export, MergeCollectedIsIdempotent) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  TelemetryRegistry reg(cfg);
  double d0 = 0, d1 = 0, h0 = 50, h1 = 70, p0 = 9000, p1 = 11000;
  reg.add_rate("core", "isp0.delivered", [&] { return d0; });
  reg.add_rate("core", "isp1.delivered", [&] { return d1; });
  reg.add_gauge("econ", "isp0.epennies_held", [&] { return h0; });
  reg.add_gauge("econ", "isp1.epennies_held", [&] { return h1; });
  reg.add_gauge("econ", "isp0.stamp_price_micros", [&] { return p0; });
  reg.add_gauge("econ", "isp1.stamp_price_micros", [&] { return p1; });
  reg.add_gauge("econ", "bank.epenny_supply", [] { return 100.0; });
  for (int w = 1; w <= 3; ++w) {
    d0 += 2;
    d1 += 3;
    reg.sample(static_cast<sim::SimTime>(w) * 60'000'000);
  }
  DeriveSpec spec;
  spec.endowment_epennies = 200.0;
  const std::vector<Series> once = merge_series({&reg}, spec);
  const std::vector<Series> twice = merge_collected(once, spec);
  EXPECT_EQ(csv_string(once), csv_string(twice));

  // And the derived aggregates are the expected point-wise combinations.
  std::map<std::string, const Series*> by_key;
  for (const Series& s : once) by_key[s.key()] = &s;
  ASSERT_TRUE(by_key.count("core.total.delivered"));
  EXPECT_DOUBLE_EQ(by_key["core.total.delivered"]->points.back().value, 5.0);
  ASSERT_TRUE(by_key.count("econ.market.stamp_price_micros"));
  EXPECT_DOUBLE_EQ(
      by_key["econ.market.stamp_price_micros"]->points.back().value, 10000.0);
  ASSERT_TRUE(by_key.count("econ.total.epennies_held"));
  EXPECT_DOUBLE_EQ(by_key["econ.total.epennies_held"]->points.back().value,
                   120.0);
  // gap = supply + endowment - held = 100 + 200 - 120.
  ASSERT_TRUE(by_key.count("econ.total.conservation_gap"));
  EXPECT_DOUBLE_EQ(
      by_key["econ.total.conservation_gap"]->points.back().value, 180.0);
}

TEST(Export, TimeseriesJsonSplitsEngineSeries) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  TelemetryRegistry reg(cfg);
  reg.add_gauge("econ", "isp0.till_micros", [] { return 1.0; });
  reg.add_engine_gauge("sim", "shard0.event_backlog", [] { return 7.0; });
  reg.sample(60'000'000);
  const std::vector<Series> all = reg.collect();
  const json::Value det = timeseries_json(all, false);
  const json::Value eng = timeseries_json(all, true);
  EXPECT_NE(det.find("econ.isp0.till_micros"), nullptr);
  EXPECT_EQ(det.find("sim.shard0.event_backlog"), nullptr);
  EXPECT_NE(eng.find("sim.shard0.event_backlog"), nullptr);
  EXPECT_EQ(eng.find("econ.isp0.till_micros"), nullptr);
}

}  // namespace
}  // namespace zmail::telemetry
