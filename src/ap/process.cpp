#include "ap/process.hpp"

#include "ap/scheduler.hpp"
#include "util/assert.hpp"

namespace zmail::ap {

void Process::add_action(std::string name, std::function<bool()> guard,
                         std::function<void()> body) {
  Action a;
  a.name = std::move(name);
  a.kind = GuardKind::kLocal;
  a.local_guard = std::move(guard);
  a.body = std::move(body);
  actions_.push_back(std::move(a));
}

void Process::add_receive(std::string_view msg_type,
                          std::function<void(const Message&)> handler) {
  Action a;
  a.name = "rcv ";
  a.name += msg_type;
  a.kind = GuardKind::kReceive;
  a.msg_type = std::string(msg_type);
  a.receive_body = std::move(handler);
  actions_.push_back(std::move(a));
}

void Process::add_timeout(std::string name,
                          std::function<bool(const GlobalView&)> guard,
                          std::function<void()> body) {
  Action a;
  a.name = std::move(name);
  a.kind = GuardKind::kTimeout;
  a.timeout_guard = std::move(guard);
  a.body = std::move(body);
  actions_.push_back(std::move(a));
}

void Process::send(ProcessId to, std::string_view type,
                   crypto::Bytes payload) {
  ZMAIL_ASSERT_MSG(scheduler_ != nullptr,
                   "process must be registered with a scheduler before send");
  scheduler_->do_send(id_, to, std::string(type), std::move(payload));
}

Scheduler& Process::scheduler() const {
  ZMAIL_ASSERT(scheduler_ != nullptr);
  return *scheduler_;
}

}  // namespace zmail::ap
