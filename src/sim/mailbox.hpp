// Lock-light SPSC mailbox for cross-shard events.
//
// ShardedSimulator keeps one mailbox per (src, dst) shard pair.  Within a
// barrier window exactly one worker thread pumps shard `src`, so each
// mailbox has a single producer; the drain at the barrier runs on whichever
// thread owns `dst` for the next window, so it has a single consumer at a
// time (the barrier itself sequences producer hand-offs).  The common path
// is a fixed-capacity ring with acquire/release indices — no locks, no
// allocation; when a window bursts past the ring capacity the overflow
// spills into a mutex-guarded vector (rare, counted).
//
// Messages are time-stamped events.  `seq` is assigned by the producer in
// push order, so the consumer can rebuild the canonical
// (at, src_shard, seq) merge order the determinism mode requires.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/time.hpp"

namespace zmail::sim {

// One cross-shard message: run `fn` at absolute time `at` in the
// destination shard.  (src_shard, seq) break merge-order ties.
struct ShardMsg {
  SimTime at = 0;
  std::uint32_t src_shard = 0;
  std::uint64_t seq = 0;
  InlineEvent fn;
};

class SpscMailbox {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  explicit SpscMailbox(std::size_t capacity = 1024) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  // Producer side.  Never blocks: a full ring spills to the overflow list.
  void push(SimTime at, std::uint32_t src_shard, InlineEvent&& fn) {
    ShardMsg m;
    m.at = at;
    m.src_shard = src_shard;
    m.seq = next_seq_++;
    m.fn = std::move(fn);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head <= mask_) {
      ring_[tail & mask_] = std::move(m);
      tail_.store(tail + 1, std::memory_order_release);
      return;
    }
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    ++overflowed_;
    overflow_.push_back(std::move(m));
  }

  // Consumer side: moves every pending message into `out` (appended).
  // Returns the number of messages drained.
  std::size_t drain(std::vector<ShardMsg>& out) {
    std::size_t n = 0;
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    while (head != tail) {
      out.push_back(std::move(ring_[head & mask_]));
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      for (auto& m : overflow_) {
        out.push_back(std::move(m));
        ++n;
      }
      overflow_.clear();
    }
    return n;
  }

  // Exact only while both sides are quiescent (i.e. at a barrier).
  bool empty() const {
    if (head_.load(std::memory_order_acquire) !=
        tail_.load(std::memory_order_acquire))
      return false;
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    return overflow_.empty();
  }

  std::uint64_t overflowed() const noexcept { return overflowed_; }
  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<ShardMsg> ring_;
  std::size_t mask_ = 0;
  std::uint64_t next_seq_ = 0;  // producer-only
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  mutable std::mutex overflow_mutex_;
  std::vector<ShardMsg> overflow_;
  std::uint64_t overflowed_ = 0;  // guarded by overflow_mutex_
};

}  // namespace zmail::sim
