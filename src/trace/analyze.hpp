// Offline analysis over a collected (or re-loaded) flight-recorder stream:
// span reconstruction, causal-chain validation, and the per-stage latency
// breakdown that tools/trace_report prints and obs v2 embeds.
//
// All analysis is in sim-time — the deterministic clock the span invariants
// are stated in.  Wall-time is available on every event for ad-hoc queries
// but plays no part in validation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/json.hpp"

namespace zmail::trace {

// One reconstructed begin/end pair.  Spans with a nonzero TraceId are keyed
// by (id, type); host-scoped spans (checkpoint, recovery, dispatch) are
// keyed by (host, type).  Unmatched begins yield closed == false.
struct Span {
  TraceId id = 0;
  Ev type = Ev::kNone;
  std::uint16_t begin_host = kNoHost;
  std::uint16_t end_host = kNoHost;
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::uint64_t begin_arg0 = 0;
  std::uint64_t end_arg0 = 0;
  std::uint64_t begin_wall_ns = 0;
  std::uint64_t end_wall_ns = 0;
  std::uint64_t begin_seq = 0;
  bool closed = false;

  std::int64_t duration_us() const noexcept { return end_us - begin_us; }

  // Wall-clock duration of the span.  Clamped to zero when the end stamp
  // precedes the begin stamp (possible across a crash/restart boundary,
  // where the steady clock restarts).
  std::uint64_t wall_duration_ns() const noexcept {
    return end_wall_ns > begin_wall_ns ? end_wall_ns - begin_wall_ns : 0;
  }
};

// Matches begins to ends.  Nested same-key spans match LIFO.
std::vector<Span> build_spans(const std::vector<TraceEvent>& events);

// The full causal chain of one traced message id.
struct Chain {
  TraceId id = 0;
  std::vector<TraceEvent> events;  // every event carrying this id, seq order
  bool has_root = false;           // saw a kMessage begin
  bool root_closed = false;        // saw the matching kMessage end
  bool lost = false;     // last word was a kNetDrop: closed-by-loss
  Ev terminal = Ev::kNone;  // kDeliver/kDiscard/kFilterDrop/kRefuse/kShed/
                            // kRefund when the chain reached a terminal
  std::uint32_t transmits = 0;  // kTransmit instants (ARQ attempts)
};

std::map<TraceId, Chain> build_chains(const std::vector<TraceEvent>& events);

// Span/chain invariants, as checked by the CI trace-smoke step:
//   - every span closed — tolerating (a) spans interrupted by a crash whose
//     host later shows a kRecovery event ("crash forgives"), and (b) root
//     spans whose chain ends in a kNetDrop with no reliable-transport
//     retry ("closed by loss");
//   - end >= begin for every closed span;
//   - child ⊆ parent: every event of a traced id falls inside its root
//     kMessage interval (in sim-time) when that root closed;
//   - exactly one kMessage begin per id — crash replay must not re-mint.
struct ValidationResult {
  bool ok = true;
  std::vector<std::string> problems;  // human-readable, one per violation
  std::size_t spans_total = 0;
  std::size_t spans_closed = 0;
  std::size_t spans_forgiven = 0;  // unclosed but crash-forgiven / lost
  std::size_t chains_total = 0;
  std::size_t chains_terminal = 0;
};

ValidationResult validate(const std::vector<TraceEvent>& events);

// Per-stage latency accounting over closed spans.  Sim-time fields drive
// validation and the obs snapshot; the parallel wall-clock fields are
// reporting-only (tools/trace_report prints both side by side).
struct StageStats {
  std::uint64_t count = 0;
  std::int64_t total_us = 0;
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
  std::uint64_t wall_total_ns = 0;
  std::uint64_t wall_min_ns = 0;
  std::uint64_t wall_max_ns = 0;

  double mean_us() const noexcept {
    return count ? static_cast<double>(total_us) / static_cast<double>(count)
                 : 0.0;
  }
  double wall_mean_us() const noexcept {
    return count ? static_cast<double>(wall_total_ns) /
                       static_cast<double>(count) / 1000.0
                 : 0.0;
  }
};

// Keys: "message" (submit → terminal, end-to-end), "stamp_buy", "stamp_sell",
// "transit", "smtp", "classify", "quiesce_buffer", "settle" (snapshot
// round), "checkpoint", "recovery".  Only stages that occurred appear.
std::map<std::string, StageStats> breakdown(
    const std::vector<TraceEvent>& events);

// {"<stage>": {count, total_us, mean_us, min_us, max_us}} — the
// "trace_breakdown" object of the zmail-obs-v2 snapshot.
json::Value breakdown_to_json(const std::map<std::string, StageStats>& b);

}  // namespace zmail::trace
