// End-to-end property tests: a full Zmail deployment under mixed workloads,
// checked against the paper's global invariants after every run.
#include <gtest/gtest.h>

#include "core/mailing_list.hpp"
#include "core/system.hpp"
#include "workload/corpus.hpp"
#include "workload/traffic.hpp"

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

ZmailParams world_params() {
  ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 8;
  p.initial_user_balance = 200;
  p.default_daily_limit = 500;
  p.initial_avail = 2'000;
  p.minavail = 500;
  p.maxavail = 5'000;
  return p;
}

// A seeded week of life: traffic, user trades, bank trades, daily resets,
// periodic snapshots.  Afterwards every invariant must hold.
class FullWeekTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullWeekTest, InvariantsSurviveAWeekOfTraffic) {
  const std::uint64_t seed = GetParam();
  ZmailSystem sys(world_params(), seed);
  sys.enable_daily_resets();
  sys.enable_bank_trading(30 * sim::kMinute);
  sys.enable_periodic_snapshots(sim::kDay);

  workload::CorpusGenerator corpus(workload::CorpusParams{},
                                   Rng(seed ^ 0xC0));
  workload::TrafficParams tp;
  tp.mean_sends_per_user_day = 6.0;
  workload::TrafficGenerator traffic(sys, tp, corpus, Rng(seed ^ 0x7A));
  traffic.build_contacts();

  Rng trade_rng(seed ^ 0x7E);
  for (int day = 0; day < 7; ++day) {
    traffic.schedule_day();
    // A few user trades sprinkled in.
    for (int k = 0; k < 10; ++k) {
      const auto i = trade_rng.next_below(4);
      const auto u = trade_rng.next_below(8);
      if (trade_rng.bernoulli(0.5))
        sys.buy_epennies(user(i, u), trade_rng.uniform_int(1, 30));
      else
        sys.sell_epennies(user(i, u), trade_rng.uniform_int(1, 30));
    }
    sys.run_for(sim::kDay);
  }
  sys.run_for(sim::kHour);  // drain stragglers

  // Conservation of e-pennies and of real money.
  EXPECT_EQ(sys.epennies_in_flight(), 0);
  EXPECT_TRUE(sys.conservation_holds());
  const Money expected_money =
      world_params().initial_isp_bank_account * std::int64_t{4} +
      world_params().initial_user_account * std::int64_t{32};
  EXPECT_EQ(sys.total_real_money(), expected_money);

  // Snapshot rounds completed and found an honest world.
  EXPECT_GE(sys.bank().metrics().snapshot_rounds, 5u);
  EXPECT_TRUE(sys.bank().last_violations().empty());
  EXPECT_EQ(sys.bank().metrics().inconsistent_pairs_found, 0u);

  // Mail volume flowed.
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < 4; ++i)
    delivered += sys.isp(i).metrics().emails_delivered;
  EXPECT_GT(delivered, 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullWeekTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Integration, ZeroSumForBalancedUsersOverAMonth) {
  // The paper's claim 2: users who receive as much as they send neither pay
  // nor profit.  Build a perfectly balanced ring of senders and check every
  // balance returns to its starting point.
  ZmailParams p = world_params();
  ZmailSystem sys(p, 99);
  sys.enable_daily_resets();
  for (int day = 0; day < 30; ++day) {
    // Each user sends one message to the "next" user across ISPs.
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t u = 0; u < 8; ++u)
        sys.send_email(user(i, u), user((i + 1) % 4, u), "daily", "note");
    sys.run_for(sim::kDay);
  }
  sys.run_for(sim::kHour);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t u = 0; u < 8; ++u)
      EXPECT_EQ(sys.isp(i).user(u).balance, p.initial_user_balance)
          << "isp " << i << " user " << u;
}

TEST(Integration, SpammerDrainsOwnBalanceIntoVictims) {
  ZmailParams p = world_params();
  ZmailSystem sys(p, 100);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(101));
  workload::SpamCampaignParams cp;
  cp.messages = 500;
  Rng rng(102);
  const auto result = workload::run_spam_campaign(sys, cp, corpus, rng);
  sys.run_for(sim::kHour);

  // The spammer paid for every accepted message (some of the random
  // recipients are the spammer itself, which pays that e-penny right back).
  const auto spammer = sys.isp(0).user(0);
  EXPECT_EQ(spammer.balance, p.initial_user_balance - spammer.lifetime_sent +
                                 spammer.lifetime_received_paid);
  EXPECT_EQ(spammer.lifetime_sent, static_cast<std::int64_t>(result.sent));
  // ...and the victims were compensated exactly (zero-sum).
  EXPECT_TRUE(sys.conservation_holds());
  // Campaign mostly refused once the balance ran dry.
  EXPECT_GT(result.refused_balance, 0u);
}

TEST(Integration, SnapshotDuringHeavyTrafficStaysConsistent) {
  ZmailParams p = world_params();
  ZmailSystem sys(p, 103);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(104));
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     Rng(105));
  traffic.build_contacts();
  traffic.schedule_day();
  // Fire snapshots into the middle of the day's traffic.
  sys.simulator().schedule_at(6 * sim::kHour, [&] { sys.start_snapshot(); });
  sys.simulator().schedule_at(18 * sim::kHour, [&] { sys.start_snapshot(); });
  sys.run_for(sim::kDay + sim::kHour);
  EXPECT_EQ(sys.bank().metrics().snapshot_rounds, 2u);
  EXPECT_TRUE(sys.bank().last_violations().empty());
  EXPECT_TRUE(sys.conservation_holds());
}

// Topology sweep: the invariants are size-independent.
struct Topology {
  std::size_t n_isps;
  std::size_t users;
};

class TopologySweepTest : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologySweepTest, InvariantsHoldAtEveryScale) {
  const Topology t = GetParam();
  ZmailParams p;
  p.n_isps = t.n_isps;
  p.users_per_isp = t.users;
  p.initial_user_balance = 50;
  p.record_inboxes = false;
  ZmailSystem sys(p, 1'000 + t.n_isps * 31 + t.users);

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(7));
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     Rng(8));
  traffic.build_contacts();
  traffic.burst(20 * t.n_isps * t.users / 4 + 50);
  sys.run_for(2 * sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);

  EXPECT_TRUE(sys.conservation_holds());
  EXPECT_TRUE(sys.bank().last_violations().empty());
  EXPECT_EQ(sys.bank().seq(), 1u);
  // Credit antisymmetry directly, post-reset: all zeros.
  for (std::size_t i = 0; i < t.n_isps; ++i)
    for (EPenny c : sys.isp(i).credit()) EXPECT_EQ(c, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweepTest,
    ::testing::Values(Topology{2, 2}, Topology{2, 50}, Topology{8, 4},
                      Topology{16, 2}, Topology{5, 20}),
    [](const ::testing::TestParamInfo<Topology>& info) {
      return std::to_string(info.param.n_isps) + "isps_" +
             std::to_string(info.param.users) + "users";
    });

TEST(Integration, MixedDeploymentEndToEnd) {
  // Half the world is compliant; mail crosses the boundary in both
  // directions; a mailing list and a spam campaign run concurrently.
  ZmailParams p = world_params();
  p.compliant = {true, true, false, false};
  p.noncompliant_policy = NonCompliantPolicy::kSegregate;
  ZmailSystem sys(p, 106);

  MailingList list(sys, user(0, 0), "announce");
  for (std::size_t u = 0; u < 8; ++u) list.subscribe(user(1, u));
  list.post("hello", "world");

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(107));
  workload::SpamCampaignParams cp;
  cp.spammer_isp = 2;  // legacy spammer: free mail
  cp.messages = 200;
  Rng rng(108);
  workload::run_spam_campaign(sys, cp, corpus, rng);

  sys.run_for(2 * sim::kHour);
  list.reconcile_and_prune();

  EXPECT_EQ(list.net_epenny_cost(), 0);
  // Legacy spam reaching compliant users was segregated, not paid for.
  std::uint64_t segregated = sys.isp(0).metrics().emails_segregated +
                             sys.isp(1).metrics().emails_segregated;
  EXPECT_GT(segregated, 0u);
  EXPECT_TRUE(sys.conservation_holds());
}

}  // namespace
}  // namespace zmail::core
