# Empty compiler generated dependencies file for bench_e11_replay_resistance.
# This may be replaced when dependencies are built.
