// Crash recovery end to end: a rebuilt party must be byte-identical to the
// one that "died" (snapshot + WAL replay is exact under fsync-per-record),
// a crash mid-scenario must leave the invariant auditor green, and
// reopening a store directory must resume the persisted state.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/invariants.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "store/checkpoint.hpp"

namespace zmail::core {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = "store_recovery_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ZmailParams store_params(const std::string& dir) {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 3;
  p.initial_user_balance = 200;
  p.default_daily_limit = 1'000;
  p.initial_avail = 300;
  p.minavail = 100;
  p.maxavail = 600;
  p.record_inboxes = false;
  p.store.enabled = true;
  p.store.dir = dir;
  return p;
}

void drive_traffic(ZmailSystem& sys, std::uint64_t seed, int rounds) {
  Rng rng(seed);
  const auto& p = sys.params();
  for (int i = 0; i < rounds; ++i) {
    const std::size_t src = rng.next_below(p.n_isps);
    const std::size_t dst = (src + 1 + rng.next_below(p.n_isps - 1)) % p.n_isps;
    sys.send_email(net::make_user_address(src, rng.next_below(p.users_per_isp)),
                   net::make_user_address(dst, rng.next_below(p.users_per_isp)),
                   "t", "b" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
}

TEST(StoreRecoveryTest, RecoverHostIsByteExactAtAQuietPoint) {
  const std::string dir = fresh_dir("exact");
  ZmailSystem sys(store_params(dir), 91);
  sys.enable_bank_trading();
  drive_traffic(sys, 92, 30);
  sys.start_snapshot();  // exercise quiesce buffering + the round machinery
  drive_traffic(sys, 93, 20);
  sys.run_for(sim::kHour);  // settle: outboxes drained, replies processed

  const crypto::Bytes isp_before = sys.isp(0).serialize_state();
  const crypto::Bytes bank_before = sys.bank().serialize_state();
  ASSERT_FALSE(isp_before.empty());

  sys.recover_host(0);
  sys.recover_host(sys.bank_index());
  EXPECT_EQ(sys.state_recoveries(), 2u);

  // The rebuilt parties (fresh construction -> snapshot restore -> WAL
  // replay) must match the pre-crash state byte for byte, RNG and all.
  EXPECT_EQ(sys.isp(0).serialize_state(), isp_before);
  EXPECT_EQ(sys.bank().serialize_state(), bank_before);

  // And the recovered system keeps working: more traffic, clean audits.
  InvariantAuditor auditor(sys);
  drive_traffic(sys, 94, 10);
  sys.start_snapshot();
  sys.run_for(sim::kHour);
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok())
      << (auditor.report().messages.empty()
              ? ""
              : auditor.report().messages.front());
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, CrashMidScenarioRecoversWithCleanAudits) {
  const std::string dir = fresh_dir("chaos");
  ZmailParams p = store_params(dir);
  // Crash survival needs the fault-tolerance stack: acked exactly-once
  // email and ISP<->bank retries redrive whatever the outage window ate.
  p.reliable_email_transport = true;
  p.retry.enabled = true;
  p.retry.base = 30 * sim::kSecond;
  ZmailSystem sys(p, 111);
  sys.enable_bank_trading();
  InvariantAuditor auditor(sys);
  auditor.run_continuously(5 * sim::kMinute);

  drive_traffic(sys, 112, 15);
  sys.start_snapshot();
  drive_traffic(sys, 113, 5);

  // Crash an ISP mid-flow, then the bank a little later.
  sys.crash_host(0, 2 * sim::kMinute);
  drive_traffic(sys, 114, 10);
  sys.crash_host(sys.bank_index(), 2 * sim::kMinute);
  drive_traffic(sys, 115, 10);
  sys.start_snapshot();
  sys.run_for(2 * sim::kHour);

  EXPECT_EQ(sys.state_recoveries(), 2u);
  EXPECT_EQ(sys.pending_transfers(), 0u);
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok())
      << (auditor.report().messages.empty()
              ? ""
              : auditor.report().messages.front());
  EXPECT_TRUE(sys.conservation_holds());
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, ReopeningAStoreDirectoryResumesPersistedState) {
  const std::string dir = fresh_dir("reopen");
  crypto::Bytes isp_saved, bank_saved;
  {
    ZmailSystem sys(store_params(dir), 77);
    sys.enable_bank_trading();
    drive_traffic(sys, 78, 25);
    sys.start_snapshot();
    sys.run_for(sim::kHour);
    sys.checkpoint_all();
    isp_saved = sys.isp(1).serialize_state();
    bank_saved = sys.bank().serialize_state();
  }  // process "exits"

  // Same params + seed, same directory: construction recovers every party
  // from disk (recover-at-open), not counted as a crash recovery.
  ZmailSystem sys(store_params(dir), 77);
  EXPECT_EQ(sys.state_recoveries(), 0u);
  EXPECT_EQ(sys.isp(1).serialize_state(), isp_saved);
  EXPECT_EQ(sys.bank().serialize_state(), bank_saved);
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, StoreOffRunsAreBitIdenticalToEachOther) {
  // Belt and braces for the zero-cost-off contract: two identical store-off
  // systems and one store-on system produce the same simulation metrics.
  const std::string dir = fresh_dir("zerocost");
  ZmailParams off = store_params(dir);
  off.store.enabled = false;
  ZmailSystem a(off, 55);
  ZmailSystem b(off, 55);
  ZmailParams on = store_params(dir);
  ZmailSystem c(on, 55);
  for (ZmailSystem* s : {&a, &b, &c}) {
    s->enable_bank_trading();
    drive_traffic(*s, 56, 20);
    s->start_snapshot();
    s->run_for(sim::kHour);
  }
  EXPECT_EQ(a.isp(0).serialize_state(), b.isp(0).serialize_state());
  EXPECT_EQ(a.bank().serialize_state(), b.bank().serialize_state());
  // The durable store must not perturb the simulation: state bytes match
  // the store-off run exactly (the WAL observes commands, never reorders
  // or reinterprets them).
  EXPECT_EQ(a.isp(0).serialize_state(), c.isp(0).serialize_state());
  EXPECT_EQ(a.bank().serialize_state(), c.bank().serialize_state());
  EXPECT_EQ(a.total_epennies(), c.total_epennies());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace zmail::core
