// Durability half of the Isp state machine: full-state (de)serialization
// for snapshots, WAL command logging helpers, and command replay.  Kept out
// of isp.cpp so the protocol logic stays readable; the two files share the
// private state via the class.
//
// Replay correctness rests on determinism: serialize_state() captures every
// input a mutating method reads — including the RNG stream (seal_into and
// backoff jitter draw from it) and the nonce counter — so re-invoking the
// logged commands in order reproduces the pre-crash state bit for bit.
#include <bit>

#include "core/isp.hpp"
#include "store/wal.hpp"

namespace zmail::core {

namespace {

constexpr std::uint8_t kStateVersion = 1;

void put_money(crypto::Bytes& b, Money m) { crypto::put_i64(b, m.micros()); }
Money get_money(crypto::ByteReader& r) {
  return Money::from_micros(r.get_i64());
}

void put_bool(crypto::Bytes& b, bool v) { crypto::put_u8(b, v ? 1 : 0); }
bool get_bool(crypto::ByteReader& r) { return r.get_u8() != 0; }

void put_rng(crypto::Bytes& b, const Rng& rng) {
  const Rng::State st = rng.save_state();
  for (std::uint64_t w : st.s) crypto::put_u64(b, w);
  crypto::put_u64(b, std::bit_cast<std::uint64_t>(st.cached_normal));
  put_bool(b, st.has_cached_normal);
}

void get_rng(crypto::ByteReader& r, Rng& rng) {
  Rng::State st;
  for (auto& w : st.s) w = r.get_u64();
  st.cached_normal = std::bit_cast<double>(r.get_u64());
  st.has_cached_normal = get_bool(r);
  rng.restore_state(st);
}

}  // namespace

void Isp::log_op(WalOp op) {
  if (wal_) wal_->append(static_cast<std::uint8_t>(op), crypto::Bytes{});
}

void Isp::log_op(WalOp op, const crypto::Bytes& payload) {
  if (wal_) wal_->append(static_cast<std::uint8_t>(op), payload);
}

void Isp::log_misbehavior(Misbehavior m) {
  if (!wal_) return;
  crypto::Bytes p;
  crypto::put_u8(p, static_cast<std::uint8_t>(m));
  log_op(WalOp::kSetMisbehavior, p);
}

crypto::Bytes Isp::serialize_state() const {
  crypto::Bytes b;
  crypto::put_u8(b, kStateVersion);

  crypto::put_u32(b, static_cast<std::uint32_t>(users_.size()));
  for (const UserAccount& u : users_) {
    crypto::put_u8(b, u.policy_override
                          ? static_cast<std::uint8_t>(*u.policy_override) + 1
                          : 0);
    put_money(b, u.account);
    crypto::put_i64(b, u.balance);
    crypto::put_i64(b, u.sent);
    crypto::put_i64(b, u.limit);
    put_bool(b, u.blocked_today);
    crypto::put_i64(b, u.warnings);
    put_bool(b, u.quarantined);
    crypto::put_i64(b, u.lifetime_sent);
    crypto::put_i64(b, u.lifetime_received_paid);
    crypto::put_i64(b, u.lifetime_epennies_bought);
    crypto::put_i64(b, u.lifetime_epennies_sold);
  }

  crypto::put_i64(b, avail_);
  put_money(b, till_);
  crypto::put_u32(b, static_cast<std::uint32_t>(credit_.size()));
  for (EPenny c : credit_) crypto::put_i64(b, c);

  put_bool(b, cansend_);
  put_bool(b, canbuy_);
  put_bool(b, cansell_);
  put_bool(b, quiescing_);
  crypto::put_i64(b, buyvalue_);
  crypto::put_i64(b, sellvalue_);
  crypto::put_u64(b, seq_);
  put_bool(b, ns1_.has_value());
  if (ns1_) crypto::put_nonce(b, *ns1_);
  put_bool(b, ns2_.has_value());
  if (ns2_) crypto::put_nonce(b, *ns2_);

  crypto::put_u32(b, static_cast<std::uint32_t>(buffer_.size()));
  for (const BufferedSend& s : buffer_) {
    crypto::put_u64(b, s.dest_isp);
    crypto::put_bytes(b, s.msg.serialize());
    put_bool(b, s.paid);
    crypto::put_u64(b, s.sender_user);
  }
  crypto::put_i64(b, buffered_paid_);

  for (const PendingWire* p : {&pending_buy_, &pending_sell_, &pending_report_}) {
    put_bool(b, p->active);
    crypto::put_string(b, p->type.name());
    crypto::put_bytes(b, p->wire);
    crypto::put_u32(b, p->attempts);
    crypto::put_i64(b, p->next_at);
  }

  // The outbox is drained within the same event that fills it, so it is
  // empty at every crash point the simulation can model; serialized anyway
  // so standalone round trips are exact.
  crypto::put_u32(b, static_cast<std::uint32_t>(outbox_.size()));
  for (const Outbound& o : outbox_) {
    crypto::put_u8(b, static_cast<std::uint8_t>(o.dest));
    crypto::put_u64(b, o.isp_index);
    crypto::put_string(b, o.type.name());
    crypto::put_bytes(b, o.payload);
    crypto::put_u64(b, o.sender_user);
  }

  crypto::put_u8(b, static_cast<std::uint8_t>(misbehavior_));

  const IspMetrics& m = metrics_;
  for (std::uint64_t v :
       {m.emails_sent_local, m.emails_sent_compliant,
        m.emails_sent_noncompliant, m.emails_received_compliant,
        m.emails_received_noncompliant, m.emails_delivered,
        m.emails_segregated, m.emails_discarded, m.emails_filtered_out,
        m.refused_no_balance, m.refused_daily_limit,
        m.emails_buffered_during_quiesce, m.snapshots_answered,
        m.zombie_warnings_sent, m.acks_generated, m.acks_received,
        m.bank_buys_attempted, m.bank_buys_accepted, m.bank_sells,
        m.bad_nonce_replies, m.bad_envelopes, m.stale_requests,
        m.bank_retries, m.report_retries, m.emails_retransmitted,
        m.emails_refunded, m.emails_shed, m.duplicate_emails_dropped})
    crypto::put_u64(b, v);

  put_rng(b, rng_);
  crypto::put_u64(b, nonce_gen_.issued());
  return b;
}

bool Isp::restore_state(const crypto::Bytes& state) {
  crypto::ByteReader r(state);
  if (r.get_u8() != kStateVersion) return false;

  const std::uint32_t n_users = r.get_u32();
  if (!r.ok() || n_users > (1u << 24)) return false;
  users_.assign(n_users, UserAccount{});
  for (UserAccount& u : users_) {
    const std::uint8_t pol = r.get_u8();
    u.policy_override =
        pol == 0 ? std::nullopt
                 : std::optional<NonCompliantPolicy>(
                       static_cast<NonCompliantPolicy>(pol - 1));
    u.account = get_money(r);
    u.balance = r.get_i64();
    u.sent = r.get_i64();
    u.limit = r.get_i64();
    u.blocked_today = get_bool(r);
    u.warnings = r.get_i64();
    u.quarantined = get_bool(r);
    u.lifetime_sent = r.get_i64();
    u.lifetime_received_paid = r.get_i64();
    u.lifetime_epennies_bought = r.get_i64();
    u.lifetime_epennies_sold = r.get_i64();
  }
  // The mail spool is not settlement state; recovery starts it empty.
  inboxes_.assign(n_users, std::vector<Delivery>{});

  avail_ = r.get_i64();
  till_ = get_money(r);
  const std::uint32_t n_credit = r.get_u32();
  if (!r.ok() || n_credit > (1u << 24)) return false;
  credit_.assign(n_credit, 0);
  for (auto& c : credit_) c = r.get_i64();

  cansend_ = get_bool(r);
  canbuy_ = get_bool(r);
  cansell_ = get_bool(r);
  quiescing_ = get_bool(r);
  buyvalue_ = r.get_i64();
  sellvalue_ = r.get_i64();
  seq_ = r.get_u64();
  ns1_.reset();
  if (get_bool(r)) ns1_ = crypto::get_nonce(r);
  ns2_.reset();
  if (get_bool(r)) ns2_ = crypto::get_nonce(r);

  const std::uint32_t n_buf = r.get_u32();
  if (!r.ok() || n_buf > (1u << 24)) return false;
  buffer_.clear();
  for (std::uint32_t i = 0; i < n_buf; ++i) {
    BufferedSend s{};
    s.dest_isp = r.get_u64();
    const auto msg = net::EmailMessage::deserialize(r.get_bytes());
    if (!msg) return false;
    s.msg = *msg;
    s.paid = get_bool(r);
    s.sender_user = r.get_u64();
    buffer_.push_back(std::move(s));
  }
  buffered_paid_ = r.get_i64();

  for (PendingWire* p : {&pending_buy_, &pending_sell_, &pending_report_}) {
    p->active = get_bool(r);
    // A never-used slot round-trips the default MsgType (empty name, not
    // internable).
    const std::string type_name = r.get_string();
    p->type = type_name.empty() ? net::MsgType{} : net::MsgType::intern(type_name);
    p->wire = r.get_bytes();
    p->attempts = r.get_u32();
    p->next_at = r.get_i64();
  }

  const std::uint32_t n_out = r.get_u32();
  if (!r.ok() || n_out > (1u << 24)) return false;
  outbox_.clear();
  for (std::uint32_t i = 0; i < n_out; ++i) {
    Outbound o{};
    o.dest = static_cast<Outbound::Dest>(r.get_u8());
    o.isp_index = r.get_u64();
    const std::string type_name = r.get_string();
    o.type = type_name.empty() ? net::MsgType{} : net::MsgType::intern(type_name);
    o.payload = r.get_bytes();
    o.sender_user = r.get_u64();
    outbox_.push_back(std::move(o));
  }

  misbehavior_ = static_cast<Misbehavior>(r.get_u8());

  IspMetrics& m = metrics_;
  for (std::uint64_t* v :
       {&m.emails_sent_local, &m.emails_sent_compliant,
        &m.emails_sent_noncompliant, &m.emails_received_compliant,
        &m.emails_received_noncompliant, &m.emails_delivered,
        &m.emails_segregated, &m.emails_discarded, &m.emails_filtered_out,
        &m.refused_no_balance, &m.refused_daily_limit,
        &m.emails_buffered_during_quiesce, &m.snapshots_answered,
        &m.zombie_warnings_sent, &m.acks_generated, &m.acks_received,
        &m.bank_buys_attempted, &m.bank_buys_accepted, &m.bank_sells,
        &m.bad_nonce_replies, &m.bad_envelopes, &m.stale_requests,
        &m.bank_retries, &m.report_retries, &m.emails_retransmitted,
        &m.emails_refunded, &m.emails_shed, &m.duplicate_emails_dropped})
    *v = r.get_u64();

  get_rng(r, rng_);
  nonce_gen_.restore_issued(r.get_u64());
  return r.ok() && r.at_end();
}

void Isp::apply_wal_record(std::uint8_t op, const crypto::Bytes& payload) {
  // Detach the sink so replayed commands do not re-log, and discard any
  // output they produce — it was already transported before the crash.
  store::WalSink* saved = wal_;
  wal_ = nullptr;
  crypto::ByteReader r(payload);
  switch (static_cast<WalOp>(op)) {
    case WalOp::kUserSend: {
      const std::size_t s = r.get_u64();
      const std::size_t dest = r.get_u64();
      const std::size_t rcpt = r.get_u64();
      const auto msg = net::EmailMessage::deserialize(r.get_bytes());
      if (r.ok() && msg) user_send(s, dest, rcpt, *msg);
      break;
    }
    case WalOp::kOnEmail: {
      const std::size_t from = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok()) on_email(from, wire);
      break;
    }
    case WalOp::kUserBuy: {
      const std::size_t t = r.get_u64();
      const EPenny x = r.get_i64();
      if (r.ok()) user_buy(t, x);
      break;
    }
    case WalOp::kUserSell: {
      const std::size_t t = r.get_u64();
      const EPenny x = r.get_i64();
      if (r.ok()) user_sell(t, x);
      break;
    }
    case WalOp::kTradePoll:
      maybe_trade_with_bank(r.get_i64());
      break;
    case WalOp::kBuyReply:
      on_buyreply(payload);
      break;
    case WalOp::kSellReply:
      on_sellreply(payload);
      break;
    case WalOp::kSnapshotRequest:
      on_request(payload);
      break;
    case WalOp::kQuiesceTimeout:
      on_quiesce_timeout(r.get_i64());
      break;
    case WalOp::kPollRetries:
      poll_retries(r.get_i64());
      break;
    case WalOp::kRefundLost: {
      const std::size_t s = r.get_u64();
      const std::size_t dest = r.get_u64();
      const bool same_epoch = get_bool(r);
      if (r.ok()) refund_lost_email(s, dest, same_epoch);
      break;
    }
    case WalOp::kEndOfDay:
      end_of_day();
      break;
    case WalOp::kReleaseUser:
      release_user(r.get_u64());
      break;
    case WalOp::kNoteRetransmit:
      note_retransmit();
      break;
    case WalOp::kNoteDupEmail:
      note_duplicate_email();
      break;
    case WalOp::kSetMisbehavior:
      set_misbehavior(static_cast<Misbehavior>(r.get_u8()));
      break;
  }
  outbox_.clear();
  wal_ = saved;
}

}  // namespace zmail::core
