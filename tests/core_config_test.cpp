#include "core/config.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace zmail::core {
namespace {

TEST(Config, DefaultsAreValid) {
  EXPECT_TRUE(ZmailParams{}.validate().empty());
}

TEST(Config, EmptyCompliantMeansAllCompliant) {
  ZmailParams p;
  p.n_isps = 3;
  EXPECT_TRUE(p.is_compliant(0));
  EXPECT_TRUE(p.is_compliant(2));
  EXPECT_EQ(p.compliant_count(), 3u);
}

TEST(Config, CompliantCountWithMask) {
  ZmailParams p;
  p.n_isps = 4;
  p.compliant = {true, false, true, false};
  EXPECT_EQ(p.compliant_count(), 2u);
  EXPECT_FALSE(p.is_compliant(1));
}

TEST(Config, ValidationCatchesEachProblem) {
  {
    ZmailParams p;
    p.n_isps = 0;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.users_per_isp = 0;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.compliant = {true};  // n_isps defaults to 2
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.minavail = 100;
    p.maxavail = 10;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.initial_user_balance = -5;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.default_daily_limit = -1;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    ZmailParams p;
    p.initial_user_account = Money::from_dollars(-1.0);
    EXPECT_FALSE(p.validate().empty());
  }
}

TEST(Config, ValidationReportsMultipleProblems) {
  ZmailParams p;
  p.n_isps = 0;
  p.users_per_isp = 0;
  p.minavail = 5;
  p.maxavail = 1;
  EXPECT_GE(p.validate().size(), 3u);
}

TEST(Config, SystemRefusesInvalidParams) {
  ZmailParams p;
  p.minavail = 100;
  p.maxavail = 10;
  EXPECT_DEATH({ ZmailSystem sys(p, 1); }, "minavail");
}

}  // namespace
}  // namespace zmail::core
