# Empty compiler generated dependencies file for federated_banks.
# This may be replaced when dependencies are built.
