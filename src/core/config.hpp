// Configuration shared by every Zmail party.
//
// Mirrors the constants and inputs of the paper's process definitions
// (Section 4): n, m, the `compliant` array published by the bank, per-user
// daily `limit`, and the avail-pool thresholds minavail/maxavail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "store/checkpoint.hpp"
#include "util/money.hpp"

namespace zmail::core {

// Strong identifier for an ISP in the public facade.  Implicitly
// constructible from a plain index so call sites stay terse
// (`sys.isp(2)`), but it does not convert back silently — reading the
// index is an explicit `.index()`, which stops an IspId from leaking into
// user-slot or byte-count arithmetic unnoticed.
class IspId {
 public:
  constexpr IspId(std::size_t index = 0) noexcept : index_(index) {}
  constexpr std::size_t index() const noexcept { return index_; }

  friend constexpr bool operator==(IspId a, IspId b) noexcept {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator!=(IspId a, IspId b) noexcept {
    return a.index_ != b.index_;
  }
  friend constexpr bool operator<(IspId a, IspId b) noexcept {
    return a.index_ < b.index_;
  }

 private:
  std::size_t index_;
};

// How a compliant ISP's user treats mail arriving from non-compliant ISPs
// (Section 5, Incremental Deployment: "segregate or discard email from
// non-compliant ISPs, or require any email from a non-compliant ISP to pass
// a spam filter").
enum class NonCompliantPolicy : std::uint8_t {
  kAccept = 0,   // deliver normally (no e-penny changes hands)
  kFilter,       // run a spam filter first
  kSegregate,    // deliver to a junk folder
  kDiscard,      // drop
};

// Exponential backoff + jitter for ISP<->Bank exchanges (buy/sell requests
// and credit reports).  Disabled by default: with a reliable network the
// retry timers would add scheduled events and perturb the deterministic
// (at, seq) event interleaving that the bit-identical sweeps depend on.
// Retries reuse the original nonce, so a reply to any attempt satisfies
// them all and the bank's idempotent handlers absorb the duplicates.
struct RetryPolicy {
  bool enabled = false;
  sim::Duration base = 2 * sim::kSecond;       // first retry after ~base
  double multiplier = 2.0;                     // backoff growth per attempt
  sim::Duration max_backoff = 5 * sim::kMinute;
  double jitter = 0.25;          // +/- fraction of the backoff, uniform
  std::uint32_t max_attempts = 0;  // 0 = retry forever

  sim::Duration backoff_for(std::uint32_t attempt) const {
    double b = static_cast<double>(base);
    for (std::uint32_t i = 1; i < attempt; ++i) {
      b *= multiplier;
      if (b >= static_cast<double>(max_backoff)) break;
    }
    const auto capped = static_cast<sim::Duration>(b);
    return capped < max_backoff ? capped : max_backoff;
  }
};

struct ZmailParams {
  // Population shape (paper constants n and m).
  std::size_t n_isps = 2;
  std::size_t users_per_isp = 10;

  // Which ISPs run Zmail; published by the bank.  Defaults to all-compliant
  // when empty.
  std::vector<bool> compliant;

  // Paper input limit[j]: max # of paid emails sent per user per day.
  std::int64_t default_daily_limit = 100;

  // Avail-pool thresholds (paper inputs minavail / maxavail).
  EPenny minavail = 1'000;
  EPenny maxavail = 10'000;

  // Starting endowments: the paper's "initial balances with their ISPs to
  // buffer the fluctuations".
  EPenny initial_user_balance = 50;
  Money initial_user_account = Money::from_dollars(5.0);
  Money initial_isp_bank_account = Money::from_dollars(1'000.0);
  EPenny initial_avail = 5'000;

  // Policy toward non-compliant senders.
  NonCompliantPolicy noncompliant_policy = NonCompliantPolicy::kAccept;

  // Whether receiving ISPs auto-acknowledge mailing-list mail (Section 5).
  bool auto_acknowledge_lists = true;

  // Section 5 extension ("detecting, limiting, and disinfecting zombie
  // PCs"): after this many limit warnings on different days, the ISP
  // suspends the account entirely until release_user() (0 = disabled).
  std::int64_t quarantine_after_warnings = 0;

  // Record full inboxes (tests/examples) or count-only (large benches).
  bool record_inboxes = true;

  // --- Fault tolerance (all default-off: zero scheduled events, zero RNG
  // draws, bit-identical behaviour when a run never sees a fault plan). ---

  // ISP<->Bank retry/backoff; see RetryPolicy above.
  RetryPolicy retry;

  // Acknowledged, exactly-once inter-ISP email transport: paid email rides
  // in an id-framed envelope, receivers dedupe and ack, senders retransmit
  // on an exponential-backoff timer.  Required for liveness under a lossy
  // FaultPlan; off by default for bit-identical fault-free runs.
  bool reliable_email_transport = false;

  // After this many unacked retransmits the sender abandons the transfer
  // and refunds the payer (0 = retry forever).  Abandoning is only
  // loss-safe while the destination has never processed the mail, so the
  // default keeps retrying until the partition heals.
  std::uint32_t email_max_retransmits = 0;

  // Bound on the quiesce buffer of pending paid sends per ISP; overflow is
  // shed (payment undone, emails_shed metric).  0 = unbounded (paper
  // behaviour).
  std::size_t max_buffered_sends = 0;

  // Durable settlement store (src/store): WAL + snapshot checkpointing per
  // party.  Off by default — disabled runs construct no store objects,
  // schedule no events, and stay bit-identical to a build without the
  // subsystem.  With store.enabled, a host crash (FaultPlan outage or
  // ZmailSystem::crash_host) wipes the party's in-memory state and recovery
  // rebuilds it from the latest snapshot plus WAL-tail replay.
  store::StoreConfig store;

  bool is_compliant(std::size_t isp) const {
    return compliant.empty() ? true : compliant.at(isp);
  }

  std::size_t compliant_count() const {
    if (compliant.empty()) return n_isps;
    std::size_t c = 0;
    for (bool b : compliant)
      if (b) ++c;
    return c;
  }

  // Configuration sanity check; returns one message per problem (empty =
  // valid).  ZmailSystem and ApZmailWorld refuse invalid parameter sets.
  std::vector<std::string> validate() const {
    std::vector<std::string> problems;
    if (n_isps < 1) problems.push_back("n_isps must be >= 1");
    if (users_per_isp < 1) problems.push_back("users_per_isp must be >= 1");
    if (!compliant.empty() && compliant.size() != n_isps)
      problems.push_back("compliant array length must equal n_isps");
    if (default_daily_limit < 0)
      problems.push_back("default_daily_limit must be >= 0");
    if (minavail < 0 || maxavail < 0)
      problems.push_back("avail thresholds must be >= 0");
    if (minavail > maxavail)
      problems.push_back("minavail must be <= maxavail");
    if (initial_user_balance < 0)
      problems.push_back("initial_user_balance must be >= 0");
    if (initial_avail < 0) problems.push_back("initial_avail must be >= 0");
    if (initial_user_account.is_negative())
      problems.push_back("initial_user_account must be >= 0");
    if (initial_isp_bank_account.is_negative())
      problems.push_back("initial_isp_bank_account must be >= 0");
    if (retry.enabled) {
      if (retry.base <= 0) problems.push_back("retry.base must be > 0");
      if (retry.multiplier < 1.0)
        problems.push_back("retry.multiplier must be >= 1");
      if (retry.max_backoff < retry.base)
        problems.push_back("retry.max_backoff must be >= retry.base");
      if (retry.jitter < 0.0 || retry.jitter > 1.0)
        problems.push_back("retry.jitter must be in [0, 1]");
    }
    if (store.enabled) {
      if (store.dir.empty())
        problems.push_back("store.dir must be set when store.enabled");
      if (store.checkpoint_interval_us < 0)
        problems.push_back("store.checkpoint_interval_us must be >= 0");
    }
    return problems;
  }
};

}  // namespace zmail::core
