#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "util/log.hpp"

namespace zmail::trace {

#ifndef ZMAIL_TRACE_DISABLED

const char* ev_name(Ev e) noexcept {
  switch (e) {
    case Ev::kNone: return "none";
    case Ev::kMessage: return "message";
    case Ev::kSubmit: return "submit";
    case Ev::kQuiesceBuffer: return "quiesce_buffer";
    case Ev::kTransit: return "transit";
    case Ev::kTransmit: return "transmit";
    case Ev::kNetSend: return "net_send";
    case Ev::kNetDeliver: return "net_deliver";
    case Ev::kNetDrop: return "net_drop";
    case Ev::kSmtp: return "smtp";
    case Ev::kClassify: return "classify";
    case Ev::kDeliver: return "deliver";
    case Ev::kDiscard: return "discard";
    case Ev::kFilterDrop: return "filter_drop";
    case Ev::kRefuse: return "refuse";
    case Ev::kShed: return "shed";
    case Ev::kDuplicateDrop: return "duplicate_drop";
    case Ev::kRefund: return "refund";
    case Ev::kAck: return "ack";
    case Ev::kBankBuy: return "bank_buy";
    case Ev::kBankSell: return "bank_sell";
    case Ev::kCreditReport: return "credit_report";
    case Ev::kSettle: return "settle";
    case Ev::kSnapshotRound: return "snapshot_round";
    case Ev::kCheckpoint: return "checkpoint";
    case Ev::kRecovery: return "recovery";
    case Ev::kLog: return "log";
    case Ev::kCount: break;
  }
  return "?";
}

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_profiling{false};
thread_local TraceId t_current = 0;
thread_local bool t_suppressed = false;
thread_local std::int64_t t_sim_us = 0;
}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_next_id{1};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::size_t> g_ring_capacity{std::size_t{1} << 16};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

// One flight-recorder ring per thread.  Single writer (the owning thread);
// readers only run from collect()/clear(), which callers serialize against
// active recording.
struct Ring {
  std::vector<TraceEvent> buf;
  std::size_t mask = 0;
  std::uint64_t head = 0;  // total events ever pushed

  explicit Ring(std::size_t capacity)
      : buf(round_up_pow2(std::max<std::size_t>(capacity, 2))),
        mask(buf.size() - 1) {}

  void push(const TraceEvent& ev) noexcept {
    buf[head & mask] = ev;
    ++head;
  }
  std::uint64_t dropped() const noexcept {
    return head > buf.size() ? head - buf.size() : 0;
  }
};

// Registry owns the rings so events survive thread exit (sweep workers come
// and go; their tails must still be collectible at the end of a run).
std::mutex g_rings_mutex;
std::vector<std::unique_ptr<Ring>>& rings() {
  static std::vector<std::unique_ptr<Ring>> r;
  return r;
}

Ring& thread_ring() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>(
        g_ring_capacity.load(std::memory_order_relaxed));
    Ring* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_rings_mutex);
    rings().push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

// Bounded mirror of util::log records (ring semantics via deque).
std::mutex g_logs_mutex;
std::deque<LogRecord>& log_mirror() {
  static std::deque<LogRecord> d;
  return d;
}
std::size_t g_log_capacity = 4096;
bool g_log_mirror_installed = false;

}  // namespace

namespace detail {

void emit_slow(Ev type, Phase phase, TraceId id, std::uint16_t host,
               std::uint64_t arg0, std::uint32_t arg1) noexcept {
  TraceEvent ev;
  ev.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  ev.sim_us = t_sim_us;
  ev.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  ev.id = id;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.host = host;
  ev.type = static_cast<std::uint8_t>(type);
  ev.phase = static_cast<std::uint8_t>(phase);
  thread_ring().push(ev);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
  if (on) detail::g_profiling.store(true, std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  detail::g_profiling.store(on, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) {
  g_ring_capacity.store(std::max<std::size_t>(events, 2),
                        std::memory_order_relaxed);
}

void clear() {
  {
    std::lock_guard<std::mutex> lock(g_rings_mutex);
    // Threads cache raw Ring pointers, so rings cannot be destroyed; reset
    // them in place instead.
    for (auto& r : rings()) {
      r->head = 0;
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_logs_mutex);
    log_mirror().clear();
  }
  g_seq.store(0, std::memory_order_relaxed);
  g_next_id.store(1, std::memory_order_relaxed);
}

std::uint64_t dropped() {
  std::lock_guard<std::mutex> lock(g_rings_mutex);
  std::uint64_t total = 0;
  for (const auto& r : rings()) total += r->dropped();
  return total;
}

std::vector<TraceEvent> collect() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(g_rings_mutex);
    for (const auto& r : rings()) {
      const std::uint64_t n = std::min<std::uint64_t>(r->head, r->buf.size());
      for (std::uint64_t i = r->head - n; i < r->head; ++i)
        out.push_back(r->buf[i & r->mask]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<LogRecord> collect_logs() {
  std::lock_guard<std::mutex> lock(g_logs_mutex);
  return {log_mirror().begin(), log_mirror().end()};
}

TraceId next_id() noexcept {
  if (!enabled() || detail::t_suppressed) return 0;
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

// --- Profiling --------------------------------------------------------------

void ProfileHistogram::record(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && (std::uint64_t{1} << (bucket + 1)) <= ns)
    ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void ProfileHistogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(~0ULL, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

ProfileHistogram::Snapshot ProfileHistogram::snapshot() const noexcept {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_.load(std::memory_order_relaxed);
  const std::uint64_t mn = min_ns_.load(std::memory_order_relaxed);
  s.min_ns = (mn == ~0ULL) ? 0 : mn;
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

double ProfileHistogram::Snapshot::percentile_ns(double p) const noexcept {
  if (count == 0) return 0.0;
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target)
      return static_cast<double>(std::uint64_t{1} << (i + 1));
  }
  return static_cast<double>(max_ns);
}

namespace {
std::mutex g_profiles_mutex;
std::map<std::string, std::unique_ptr<ProfileHistogram>>& profile_map() {
  static std::map<std::string, std::unique_ptr<ProfileHistogram>> m;
  return m;
}
}  // namespace

ProfileHistogram& profile(const char* name) {
  std::lock_guard<std::mutex> lock(g_profiles_mutex);
  auto& slot = profile_map()[name];
  if (!slot) slot = std::make_unique<ProfileHistogram>();
  return *slot;
}

json::Value profiles_to_json() {
  json::Value out = json::Value::object();
  std::lock_guard<std::mutex> lock(g_profiles_mutex);
  for (const auto& [name, hist] : profile_map()) {
    const auto s = hist->snapshot();
    if (s.count == 0) continue;
    json::Value h = json::Value::object();
    h["count"] = s.count;
    h["total_ns"] = s.total_ns;
    h["mean_ns"] =
        static_cast<double>(s.total_ns) / static_cast<double>(s.count);
    h["min_ns"] = s.min_ns;
    h["max_ns"] = s.max_ns;
    h["p50_ns"] = s.percentile_ns(0.50);
    h["p99_ns"] = s.percentile_ns(0.99);
    out[name] = std::move(h);
  }
  return out;
}

void reset_profiles() {
  std::lock_guard<std::mutex> lock(g_profiles_mutex);
  for (auto& [name, hist] : profile_map()) hist->reset();
}

// --- Log mirroring ----------------------------------------------------------

void install_log_mirror(std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(g_logs_mutex);
    g_log_capacity = std::max<std::size_t>(capacity, 1);
    if (g_log_mirror_installed) return;
    g_log_mirror_installed = true;
  }
  set_log_sink([](LogLevel level, const char* tag, const char* text) {
    if (!enabled()) return;
    LogRecord rec;
    rec.ev.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
    rec.ev.sim_us = detail::t_sim_us;
    rec.ev.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    rec.ev.id = detail::t_current;
    rec.ev.arg0 = static_cast<std::uint64_t>(level);
    rec.ev.type = static_cast<std::uint8_t>(Ev::kLog);
    rec.ev.phase = static_cast<std::uint8_t>(Phase::kInstant);
    rec.tag = tag;
    rec.text = text;
    std::lock_guard<std::mutex> lock(g_logs_mutex);
    auto& d = log_mirror();
    d.push_back(std::move(rec));
    while (d.size() > g_log_capacity) d.pop_front();
  });
}

void remove_log_mirror() {
  {
    std::lock_guard<std::mutex> lock(g_logs_mutex);
    if (!g_log_mirror_installed) return;
    g_log_mirror_installed = false;
  }
  set_log_sink({});
}

#else  // ZMAIL_TRACE_DISABLED

const char* ev_name(Ev) noexcept { return "?"; }

#endif

}  // namespace zmail::trace
