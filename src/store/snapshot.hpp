// Versioned binary snapshot format.
//
// A snapshot is a full serialization of one party's settlement state at a
// quiesce boundary, paired with the WAL position it covers: recovery loads
// the snapshot, then replays WAL records with lsn >= meta.next_lsn.  (The
// checkpointer truncates the WAL behind each snapshot, so in practice the
// whole surviving log replays.)
//
// On-disk grammar (all integers big-endian, matching the wire format):
//
//   snapshot := header section*
//   header   := "ZSNP" version:u32 features:u32 next_lsn:u64
//               sim_time_us:u64 section_count:u32 crc:u32
//               (36 bytes; crc is CRC32C over the first 32)
//   section  := id:u32 len:u64 payload:u8[len] crc:u32
//               (crc is CRC32C over payload)
//
// Versioning contract: `version` bumps on any incompatible layout change
// and readers reject unknown versions with StoreStatus::kUnknownVersion.
// `features` is a bitmask of *required* capabilities — a reader that does
// not recognize a set bit must refuse the file (kUnknownFeature) rather
// than silently ignore data it cannot interpret.  v1 defines no feature
// bits.  The v1 byte layout is pinned by a golden-file test
// (tests/store_snapshot_test.cpp); changing it means adding v2, not
// editing v1.
//
// Writes are atomic: encode to `<path>.tmp`, fsync, rename over `path`, so
// a crash mid-checkpoint leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "store/status.hpp"
#include "store/wal.hpp"

namespace zmail::store {

constexpr std::uint32_t kSnapshotVersion = 1;
// Feature bits this build understands (none defined in v1).
constexpr std::uint32_t kSupportedFeatures = 0;

// Section ids.  Each party writes a single kStateSection blob today; the
// id space leaves room for side tables (metrics, indexes) without a
// version bump — readers skip recognized-but-unneeded sections.
constexpr std::uint32_t kStateSection = 1;

struct SnapshotSection {
  std::uint32_t id = 0;
  crypto::Bytes payload;
};

struct SnapshotMeta {
  std::uint32_t version = kSnapshotVersion;
  std::uint32_t features = 0;
  Lsn next_lsn = 1;               // first WAL record NOT covered by this state
  std::uint64_t sim_time_us = 0;  // simulation clock at checkpoint
};

struct SnapshotData {
  SnapshotMeta meta;
  std::vector<SnapshotSection> sections;
};

// Pure (de)serialization — the fuzz and golden tests work on buffers.
crypto::Bytes encode_snapshot(const SnapshotData& snap);
StoreStatus decode_snapshot(const crypto::Bytes& file, SnapshotData& out);

// Atomic file write (temp + rename) / whole-file read.
StoreStatus write_snapshot_file(const std::string& path,
                                const SnapshotData& snap, bool fsync_data,
                                std::string* error = nullptr);
StoreStatus read_snapshot_file(const std::string& path, SnapshotData& out);

}  // namespace zmail::store
