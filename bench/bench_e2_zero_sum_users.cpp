// E2 — Zero-sum for normal users (paper Section 1.2, claim 2).
//
// Claim: "Users who receive as much email as they send, on average, will
// neither pay nor profit from email, once they have set up initial balances
// with their ISPs to buffer the fluctuations."
//
// Regenerates:
//   E2.a  30 simulated days of realistic traffic: distribution of each
//         user's net e-penny drift (mean ~ 0)
//   E2.b  the buffer question: refusal rate vs initial balance
//   E2.c  windfall accounting: spam received is income for its victims
#include <cmath>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

core::ZmailParams base_params() {
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 40;
  p.initial_user_balance = 100;
  p.default_daily_limit = 400;
  p.record_inboxes = false;
  return p;
}

void e2a_net_drift() {
  core::ZmailParams p = base_params();
  core::ZmailSystem sys(p, 21);
  sys.enable_daily_resets();
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(22));
  workload::TrafficParams tp;
  tp.mean_sends_per_user_day = 8.0;
  workload::TrafficGenerator traffic(sys, tp, corpus, Rng(23));
  traffic.build_contacts();

  for (int day = 0; day < 30; ++day) {
    traffic.schedule_day();
    sys.run_for(sim::kDay);
  }
  sys.run_for(sim::kHour);

  OnlineStats drift;
  Sample abs_drift, balanced_drift;
  bool exact_identity = true;
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    const core::Isp& isp = sys.isp(i);
    isp.users().for_each_active([&](core::UserId, core::ConstUserRef acc) {
      const EPenny d = acc.balance - p.initial_user_balance;
      drift.add(static_cast<double>(d));
      abs_drift.add(std::abs(static_cast<double>(d)));
      // The paper's precise claim: your balance moves ONLY with your own
      // send/receive asymmetry — the protocol itself takes nothing.
      if (d != acc.lifetime_received_paid - acc.lifetime_sent)
        exact_identity = false;
      // And for users whose flow is balanced (within 10%), drift is small.
      const std::int64_t volume = acc.lifetime_sent;
      if (volume > 0 &&
          std::abs(acc.lifetime_received_paid - acc.lifetime_sent) <=
              volume / 10)
        balanced_drift.add(std::abs(static_cast<double>(d)));
    });
  }

  Table t({"metric", "value"});
  t.add_row({"users", Table::num(drift.count())});
  t.add_row({"mean net drift (e-pennies / 30 days)",
             Table::num(drift.mean(), 2)});
  t.add_row({"stddev", Table::num(drift.stddev(), 2)});
  t.add_row({"p50 |drift|", Table::num(abs_drift.percentile(50), 1)});
  t.add_row({"p95 |drift|", Table::num(abs_drift.percentile(95), 1)});
  t.add_row({"balanced users (send ~ receive)",
             Table::num(std::uint64_t{balanced_drift.size()})});
  t.add_row({"their p95 |drift|",
             balanced_drift.empty()
                 ? "-"
                 : Table::num(balanced_drift.percentile(95), 1)});
  t.print("E2.a  per-user net e-penny drift after 30 days of traffic");

  bench::check(std::abs(drift.mean()) < 1e-6,
               "aggregate drift is exactly zero (zero-sum)");
  bench::check(exact_identity,
               "balance moves only with the user's own send/receive flow — "
               "the protocol charges nothing on top");
  bench::check(!balanced_drift.empty() &&
                   balanced_drift.percentile(95) < 30.0,
               "users with balanced flow neither pay nor profit");
  bench::check(sys.conservation_holds(), "e-penny conservation holds");
}

void e2b_buffer_size() {
  Table t({"initial balance", "sends refused (no funds)", "refusal rate"});
  std::uint64_t refused_small = 0, refused_large = 0;
  for (EPenny buffer : {0, 5, 20, 100}) {
    core::ZmailParams p = base_params();
    p.initial_user_balance = buffer;
    core::ZmailSystem sys(p, 24);
    sys.enable_daily_resets();
    workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(25));
    workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                       Rng(26));
    traffic.build_contacts();
    for (int day = 0; day < 10; ++day) {
      traffic.schedule_day();
      sys.run_for(sim::kDay);
    }
    std::uint64_t refused = 0, attempted = 0;
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      refused += sys.isp(i).metrics().refused_no_balance;
      attempted += sys.isp(i).metrics().emails_sent_compliant +
                   sys.isp(i).metrics().emails_sent_local +
                   sys.isp(i).metrics().refused_no_balance;
    }
    t.add_row({Table::num(buffer), Table::num(refused),
               Table::pct(static_cast<double>(refused) /
                          static_cast<double>(attempted))});
    if (buffer == 0) refused_small = refused;
    if (buffer == 100) refused_large = refused;
  }
  t.print("E2.b  initial balance as a fluctuation buffer (10 days)");
  bench::check(refused_small > 0,
               "without a buffer, fluctuations block some sends");
  bench::check(refused_large * 10 < refused_small || refused_large == 0,
               "a modest initial balance absorbs the fluctuations");
}

void e2c_spam_windfall() {
  core::ZmailParams p = base_params();
  core::ZmailSystem sys(p, 27);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(28));
  workload::SpamCampaignParams cp;
  cp.messages = 400;
  Rng rng(29);
  workload::run_spam_campaign(sys, cp, corpus, rng);
  sys.run_for(sim::kHour);

  EPenny victims_gain = 0;
  std::uint64_t victims = 0;
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    // Column scan: the windfall question only touches one column.
    const auto balances = sys.isp(i).users().balances();
    for (std::size_t u = 0; u < balances.size(); ++u) {
      if (i == cp.spammer_isp && u == cp.spammer_user) continue;
      if (balances[u] > p.initial_user_balance) {
        victims_gain += balances[u] - p.initial_user_balance;
        ++victims;
      }
    }
  }
  const auto spammer = sys.isp(cp.spammer_isp).user(cp.spammer_user);

  Table t({"metric", "value"});
  t.add_row({"spammer net loss (e-pennies)",
             Table::num(p.initial_user_balance - spammer.balance)});
  t.add_row({"victims compensated", Table::num(std::uint64_t{victims})});
  t.add_row({"victims' total windfall", Table::num(victims_gain)});
  t.print("E2.c  spam as windfall: the receiver is paid (Section 1.2)");

  bench::check(victims_gain > 0 && victims > 0,
               "spam recipients earned e-pennies (windfall, not nuisance)");
  bench::check(sys.conservation_holds(),
               "spammer losses exactly fund recipient windfalls");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e2_zero_sum_users", argc, argv);
  std::printf("=== E2: zero-sum property for normal users ===\n");
  e2a_net_drift();
  e2b_buffer_size();
  e2c_spam_windfall();
  return harness.finish();
}
