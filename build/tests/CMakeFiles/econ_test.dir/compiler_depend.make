# Empty compiler generated dependencies file for econ_test.
# This may be replaced when dependencies are built.
