#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace zmail::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, TiesBreakInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_after(25, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 75);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(10, [&] { ++ran; });
  sim.schedule_at(20, [&] { ++ran; });
  sim.schedule_at(30, [&] { ++ran; });
  EXPECT_EQ(sim.run(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunAdvancesClockToBoundaryEvenWhenIdle) {
  Simulator sim;
  sim.run(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(1, [&] { ++ran; });
  sim.schedule_at(2, [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(5, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 45);
}

TEST(Simulator, ScheduleEveryRepeatsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_every(kDay, [&] { return ++ticks < 5; });
  sim.run(30 * kDay);
  EXPECT_EQ(ticks, 5);
}

TEST(Simulator, ScheduleEveryCustomFirstTime) {
  Simulator sim;
  SimTime first_fire = -1;
  sim.schedule_every(
      10 * kSecond,
      [&] {
        if (first_fire < 0) first_fire = sim.now();
        return false;
      },
      3 * kSecond);
  sim.run();
  EXPECT_EQ(first_fire, 3 * kSecond);
}

TEST(Simulator, DurationConstantsAreConsistent) {
  EXPECT_EQ(kSecond, 1'000'000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_EQ(from_seconds(1.5), 1'500'000);
}

TEST(FormatTime, RendersComponents) {
  EXPECT_EQ(format_time(0), "0d 00:00:00.000");
  EXPECT_EQ(format_time(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond +
                        56 * kMillisecond),
            "1d 02:03:04.056");
}

}  // namespace
}  // namespace zmail::sim
