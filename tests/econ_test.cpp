#include <gtest/gtest.h>

#include <cmath>

#include "econ/adoption.hpp"
#include "econ/isp_cost.hpp"
#include "econ/legal.hpp"
#include "econ/spammer.hpp"

namespace zmail::econ {
namespace {

// --- Spammer economics (E1 foundations) -------------------------------------

TEST(Spammer, SmtpCampaignIsProfitableAtTinyResponseRates) {
  Campaign c;  // 1M messages, 1e-5 response, $25/response
  const CampaignOutcome smtp = evaluate(c, smtp_regime());
  EXPECT_GT(smtp.profit.dollars(), 0.0);
}

TEST(Spammer, SameCampaignLosesMoneyUnderZmail) {
  Campaign c;
  const CampaignOutcome zm = evaluate(c, zmail_regime());
  EXPECT_LT(zm.profit.dollars(), 0.0);
}

TEST(Spammer, SendingCostRatioIsAtLeastTwoOrdersOfMagnitude) {
  // The paper's headline claim.
  const double ratio = zmail_regime().cost_per_message.dollars() /
                       smtp_regime().cost_per_message.dollars();
  EXPECT_GE(ratio, 100.0);
}

TEST(Spammer, BreakEvenResponseRateRisesByTheSameFactor) {
  Campaign c;
  c.fixed_costs = Money::zero();  // isolate the marginal effect
  const double ratio = break_even_ratio(c);
  EXPECT_NEAR(ratio, 100.0, 1.0);
}

TEST(Spammer, BreakEvenIsExactlyBreakEven) {
  Campaign c;
  const SendingRegime r = zmail_regime();
  c.response_rate = break_even_response_rate(c, r);
  const CampaignOutcome out = evaluate(c, r);
  EXPECT_NEAR(out.profit.dollars(), 0.0, 0.01);
}

TEST(Spammer, PartialDeploymentInterpolatesCost) {
  const Money full = zmail_regime().cost_per_message;
  const Money none = smtp_regime().cost_per_message;
  const Money half = zmail_partial_regime(0.5).cost_per_message;
  EXPECT_GT(half, none);
  EXPECT_LT(half, full);
  EXPECT_EQ(zmail_partial_regime(0.0).cost_per_message, none);
  EXPECT_EQ(zmail_partial_regime(1.0).cost_per_message, full);
}

TEST(Spammer, DeliveryRateScalesRevenue) {
  Campaign c;
  SendingRegime r = smtp_regime();
  const Money rev_full = evaluate(c, r).revenue;
  r.delivery_rate = 0.5;
  EXPECT_EQ(evaluate(c, r).revenue, rev_full * 0.5);
}

TEST(Spammer, MaxProfitableVolumeZeroWhenMarginNegative) {
  Campaign c;  // margin under zmail: 1e-5 * $25 = $2.5e-4 << $0.01
  EXPECT_EQ(max_profitable_volume(c, zmail_regime()), 0u);
  EXPECT_EQ(max_profitable_volume(c, smtp_regime()), c.messages);
}

TEST(Spammer, TargetedCampaignCanStillWorkUnderZmail) {
  // The paper: "incentives will favor more targeted advertising".  A 2%
  // response-rate targeted campaign clears the e-penny bar.
  Campaign c;
  c.messages = 10'000;
  c.response_rate = 0.02;
  EXPECT_GT(evaluate(c, zmail_regime()).profit.dollars(), 0.0);
}

TEST(Spammer, RoiIsNegativeWhenProfitNegative) {
  Campaign c;
  const CampaignOutcome zm = evaluate(c, zmail_regime());
  EXPECT_LT(zm.roi, 0.0);
}

TEST(Spammer, PricedRegimeScalesDeterrence) {
  Campaign c;
  c.fixed_costs = Money::zero();
  const double be_cheap = break_even_response_rate(
      c, zmail_priced_regime(Money::from_micros(1'000)));
  const double be_paper =
      break_even_response_rate(c, zmail_priced_regime(Money::from_cents(1)));
  EXPECT_NEAR(be_paper / be_cheap, 10.0, 0.01);  // linear in price
  EXPECT_EQ(zmail_priced_regime(Money::from_cents(1)).cost_per_message,
            zmail_regime().cost_per_message);
}

// --- Market equilibrium ------------------------------------------------------

TEST(Equilibrium, FreeMailMeansAllSpamSurvives) {
  CampaignPopulation pop;
  EXPECT_DOUBLE_EQ(surviving_spam_share(pop, Money::zero()), 1.0);
}

TEST(Equilibrium, SurvivalIsMonotoneDecreasingInPrice) {
  CampaignPopulation pop;
  double prev = 1.0;
  for (Money price : {Money::from_micros(10), Money::from_micros(1'000),
                      Money::from_cents(1), Money::from_cents(100)}) {
    const double share = surviving_spam_share(pop, price);
    EXPECT_LE(share, prev);
    EXPECT_GE(share, 0.0);
    prev = share;
  }
}

TEST(Equilibrium, MedianCampaignDiesAtItsBreakEvenPrice) {
  // At price = median_response * revenue, exactly half the campaign mass
  // survives (the lognormal median).
  CampaignPopulation pop;
  const double median_response = std::exp(pop.log_response_mu);
  const Money price =
      pop.revenue_per_response * median_response;
  EXPECT_NEAR(surviving_spam_share(pop, price), 0.5, 0.01);
}

TEST(Equilibrium, PaperPriceKillsAlmostAllSpam) {
  CampaignPopulation pop;
  const double share = surviving_spam_share(pop, Money::from_cents(1));
  EXPECT_LT(share, 0.05);
  EXPECT_GT(share, 0.0);  // targeted campaigns survive, as the paper wants
}

TEST(Equilibrium, PriceSearchInvertsTheCurve) {
  CampaignPopulation pop;
  const Money p90 = price_for_spam_reduction(pop, 0.10);
  EXPECT_LE(surviving_spam_share(pop, p90), 0.10);
  EXPECT_GT(surviving_spam_share(
                pop, Money::from_micros(p90.micros() / 2)),
            0.10);
  // Deeper cuts need higher prices.
  EXPECT_GT(price_for_spam_reduction(pop, 0.01), p90);
}

// --- ISP cost model (E3 foundations) ----------------------------------------

TEST(IspCost, CostGrowsWithSpamShare) {
  MessageProfile prof;
  ResourcePrices prices;
  const IspLoad clean{1'000'000, 0};
  const IspLoad spammy{1'000'000, 1'500'000};  // 60% spam
  const Money clean_cost = isp_cost(clean, prof, prices).total;
  const Money spam_cost = isp_cost(spammy, prof, prices).total;
  EXPECT_GT(spam_cost, clean_cost * std::int64_t{2});
}

TEST(IspCost, AttributableSpamCostIsMarginal) {
  MessageProfile prof;
  ResourcePrices prices;
  const IspLoad load{1'000'000, 500'000};
  const IspCostBreakdown b = isp_cost(load, prof, prices);
  const IspCostBreakdown clean =
      isp_cost({load.legit_messages, 0}, prof, prices);
  EXPECT_EQ(b.attributable_to_spam, b.total - clean.total);
}

TEST(IspCost, FilteredSpamStillCostsBandwidthAndCpu) {
  MessageProfile prof;
  ResourcePrices prices;
  const IspLoad load{0, 1'000'000};
  // Filter discards everything before storage.
  const IspCostBreakdown b = isp_cost(load, prof, prices, 0.0);
  EXPECT_GT(b.bandwidth.dollars(), 0.0);
  EXPECT_GT(b.filter_cpu.dollars(), 0.0);
  EXPECT_TRUE(b.storage.is_zero());
}

TEST(IspCost, NoFilterNoCpuCost) {
  MessageProfile prof;
  prof.filtered = false;
  const IspCostBreakdown b =
      isp_cost({1'000'000, 0}, prof, ResourcePrices{});
  EXPECT_TRUE(b.filter_cpu.is_zero());
}

TEST(IspCost, ComponentsSumToTotal) {
  const IspCostBreakdown b =
      isp_cost({123'456, 654'321}, MessageProfile{}, ResourcePrices{});
  EXPECT_EQ(b.total, b.bandwidth + b.storage + b.filter_cpu);
}

// --- Adoption dynamics (E6 foundations) --------------------------------------

TEST(Adoption, BootstrapsFromTwoIspsToMajority) {
  AdoptionParams p;
  Rng rng(77);
  const auto trace = simulate_adoption(p, rng);
  ASSERT_EQ(trace.size(), p.steps + 1);
  EXPECT_EQ(trace.front().compliant_isps, 2u);
  EXPECT_GT(trace.back().compliant_user_share, 0.9);
}

TEST(Adoption, ShareIsMonotonicallyNonDecreasing) {
  AdoptionParams p;
  Rng rng(78);
  const auto trace = simulate_adoption(p, rng);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].compliant_user_share + 1e-9,
              trace[i - 1].compliant_user_share);
}

TEST(Adoption, PositiveFeedbackAcceleratesGrowth) {
  // The S-curve: the steepest growth happens in the interior, after the
  // bootstrap phase and before saturation — the signature of the positive
  // feedback the paper predicts.
  AdoptionParams p;
  Rng rng(79);
  const auto trace = simulate_adoption(p, rng);
  double max_gain = 0.0;
  double share_at_max = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double gain = trace[i].compliant_user_share -
                        trace[i - 1].compliant_user_share;
    if (gain > max_gain) {
      max_gain = gain;
      share_at_max = trace[i - 1].compliant_user_share;
    }
  }
  EXPECT_GT(share_at_max, trace.front().compliant_user_share + 0.01);
  EXPECT_LT(share_at_max, 0.95);
  // And growth genuinely accelerated relative to the first step.
  const double first_gain =
      trace[1].compliant_user_share - trace[0].compliant_user_share;
  EXPECT_GT(max_gain, first_gain * 1.5);
}

TEST(Adoption, CompliantUsersSeeLessSpam) {
  AdoptionParams p;
  Rng rng(80);
  const auto trace = simulate_adoption(p, rng);
  for (const auto& s : trace)
    EXPECT_LT(s.avg_spam_compliant, s.avg_spam_noncompliant);
}

TEST(Adoption, SpamConcentratesOnShrinkingFreeWorld) {
  AdoptionParams p;
  Rng rng(81);
  const auto trace = simulate_adoption(p, rng);
  EXPECT_GT(trace.back().avg_spam_noncompliant,
            trace.front().avg_spam_noncompliant);
}

// --- Legal baseline (Section 2.1) --------------------------------------------

TEST(Legal, WeakEnforcementChangesNothing) {
  LegalParams p;
  p.enforcement_prob = 0.001;  // fines are noise next to campaign profit
  const LegalOutcome o = evaluate_legal(p);
  EXPECT_EQ(o.spam_suppressed, 0.0);
  EXPECT_EQ(o.relocated, 0.0);
}

TEST(Legal, StrongEnforcementJustMovesSpammersOffshore) {
  LegalParams p;
  p.enforcement_prob = 0.5;  // staying is ruinous...
  const LegalOutcome o = evaluate_legal(p);
  EXPECT_EQ(o.relocated, 1.0);  // ...so they relocate
  EXPECT_EQ(o.spam_suppressed, 0.0);
  EXPECT_EQ(o.spam_change, 0.0);
}

TEST(Legal, SpamStopsOnlyWhenRelocationIsAlsoUnprofitable) {
  LegalParams p;
  p.enforcement_prob = 0.5;
  p.relocation_cost = Money::from_dollars(1e9);  // hypothetical wall
  const LegalOutcome o = evaluate_legal(p);
  EXPECT_EQ(o.covered_compliance, 1.0);
  // But coverage is only ~43% of origin, so most spam survives anyway.
  EXPECT_NEAR(o.spam_suppressed, 0.4253, 1e-3);
  EXPECT_GT(-o.spam_change, 0.4);
}

TEST(Legal, RegistryCanIncreaseSpam) {
  // The FTC conclusion the paper cites: the registry "would fail to reduce
  // the amount of spam consumers receive, might increase it".
  LegalParams p;
  p.registry = true;
  p.enforcement_prob = 0.05;  // realistic: staying still pays
  const LegalOutcome o = evaluate_legal(p);
  EXPECT_GT(o.spam_change, 0.0);  // net spam goes UP
}

TEST(Legal, SpamChangeIsBoundedBelow) {
  LegalParams p;
  p.covered_origin_share = 1.0;
  p.enforcement_prob = 1.0;
  p.relocation_cost = Money::from_dollars(1e12);
  const LegalOutcome o = evaluate_legal(p);
  EXPECT_GE(o.spam_change, -1.0);
  EXPECT_EQ(o.spam_suppressed, 1.0);
}

TEST(Adoption, StepsToShareNotReachedReturnsPastEnd) {
  AdoptionParams p;
  p.steps = 3;
  p.switch_rate = 0.0;  // frozen world
  Rng rng(82);
  const auto trace = simulate_adoption(p, rng);
  EXPECT_EQ(steps_to_share(trace, 0.99), trace.back().step + 1);
}

}  // namespace
}  // namespace zmail::econ
