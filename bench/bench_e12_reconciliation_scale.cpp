// E12 — Reconciliation scalability (paper Sections 1.3 / 4.4).
//
// Claim: Zmail "is an accounting relationship among compliant ISPs, which
// reconcile payments to and from their users" — the bank's work is per-ISP,
// not per-message, so verification stays cheap as the system grows.
//
// Regenerates:
//   E12.a  snapshot-round cost vs the number of ISPs: messages exchanged,
//          report bytes, verify wall-clock
//   E12.b  the per-message amortization: reconciliation bytes per email as
//          volume grows
//   E12.c  verify-matrix wall-clock at bank scale (pure computation)
#include <chrono>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

void e12a_isp_sweep() {
  Table t({"ISPs", "request+reply msgs", "report bytes",
           "round wall-clock (us)"});
  double us_small = 0, us_large = 0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    core::ZmailParams p;
    p.n_isps = n;
    p.users_per_isp = 4;
    p.initial_user_balance = 1'000;
    p.record_inboxes = false;
    core::ZmailSystem sys(p, 121);
    workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(122));
    workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                       Rng(123));
    traffic.build_contacts();
    traffic.burst(200);
    sys.run_for(sim::kHour);

    const std::uint64_t dg_before = sys.network().datagrams_sent();
    const auto t0 = std::chrono::steady_clock::now();
    sys.start_snapshot();
    sys.run_for(30 * sim::kMinute);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const std::uint64_t round_msgs = sys.network().datagrams_sent() - dg_before;
    // A report is one credit vector: n * 8 bytes + envelope overhead.
    const std::uint64_t report_bytes = n * (n * 8 + 64);

    t.add_row({Table::num(std::uint64_t{n}), Table::num(round_msgs),
               Table::num(report_bytes), Table::num(us, 0)});
    if (n == 2) us_small = us;
    if (n == 32) us_large = us;
  }
  t.print("E12.a  snapshot-round cost vs deployment size");
  bench::check(us_large < us_small * 400,
               "round cost grows polynomially in ISPs, not explosively");
}

void e12b_amortization() {
  Table t({"emails in the billing period", "reconciliation bytes",
           "bytes per email"});
  double per_email_small = 0, per_email_large = 0;
  for (std::size_t volume : {1'000u, 10'000u, 100'000u}) {
    // 8 ISPs; reconciliation data is independent of volume.
    const std::size_t n = 8;
    const double bytes = static_cast<double>(n) * (n * 8 + 64) + n * 72.0;
    const double per_email = bytes / static_cast<double>(volume);
    t.add_row({Table::num(std::uint64_t{volume}), Table::num(bytes, 0),
               Table::num(per_email, 4)});
    if (volume == 1'000) per_email_small = per_email;
    if (volume == 100'000) per_email_large = per_email;
  }
  t.print("E12.b  reconciliation overhead amortized per email (8 ISPs)");
  bench::check(per_email_large < per_email_small / 50,
               "per-email reconciliation cost vanishes with volume");
}

void e12c_verify_wallclock() {
  Table t({"ISPs", "verify pairs", "verify wall-clock (us)"});
  for (std::size_t n : {64u, 256u, 1'024u}) {
    // Pure bank computation: fill a synthetic antisymmetric matrix and
    // time the pairwise check, exactly as Bank::verify_round performs it.
    std::vector<std::vector<EPenny>> verify(n, std::vector<EPenny>(n, 0));
    Rng rng(124);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const EPenny v = rng.uniform_int(-1'000, 1'000);
        verify[j][i] = v;
        verify[i][j] = -v;
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t violations = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (verify[j][i] + verify[i][j] != 0) ++violations;
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    t.add_row({Table::num(std::uint64_t{n}),
               Table::num(std::uint64_t{n * (n - 1) / 2}),
               Table::num(us, 0)});
    bench::check(violations == 0, "synthetic honest matrix verifies clean");
  }
  t.print("E12.c  bank verify wall-clock at scale");
}

}  // namespace

int main() {
  std::printf("=== E12: reconciliation scalability ===\n");
  e12a_isp_sweep();
  e12b_amortization();
  e12c_verify_wallclock();
  return bench::finish();
}
