#include "core/isp.hpp"

#include <gtest/gtest.h>

#include "core/bank.hpp"

namespace zmail::core {
namespace {

ZmailParams small_params() {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 4;
  p.default_daily_limit = 5;
  p.initial_user_balance = 10;
  p.initial_avail = 100;
  p.minavail = 50;
  p.maxavail = 200;
  return p;
}

net::EmailMessage mail(std::size_t fi, std::size_t fu, std::size_t ti,
                       std::size_t tu,
                       net::MailClass cls = net::MailClass::kLegitimate) {
  return net::make_email(net::make_user_address(fi, fu),
                         net::make_user_address(ti, tu), "s", "b", cls);
}

class IspTest : public ::testing::Test {
 protected:
  IspTest() : keys_(crypto::generate_keypair(key_rng_)) {}

  Rng key_rng_{101};
  crypto::KeyPair keys_;
  ZmailParams params_ = small_params();
  Isp isp_{0, params_, keys_.pub, 42};
};

// --- Section 4.1: sending -------------------------------------------------

TEST_F(IspTest, LocalSendMovesEPennyBetweenUsers) {
  EXPECT_EQ(isp_.user_send(0, 0, 1, mail(0, 0, 0, 1)),
            SendResult::kDeliveredLocally);
  EXPECT_EQ(isp_.user(0).balance, 9);
  EXPECT_EQ(isp_.user(1).balance, 11);
  EXPECT_EQ(isp_.user(0).sent, 1);
  EXPECT_TRUE(isp_.outbox_empty());
  ASSERT_EQ(isp_.inbox(1).size(), 1u);
  EXPECT_EQ(isp_.inbox(1)[0].paid, 1);
}

TEST_F(IspTest, RemoteCompliantSendChargesAndRecordsCredit) {
  EXPECT_EQ(isp_.user_send(0, 1, 2, mail(0, 0, 1, 2)), SendResult::kSentPaid);
  EXPECT_EQ(isp_.user(0).balance, 9);
  EXPECT_EQ(isp_.credit()[1], 1);
  const auto out = isp_.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dest, Outbound::Dest::kIsp);
  EXPECT_EQ(out[0].isp_index, 1u);
  EXPECT_EQ(out[0].type, kMsgEmail);
}

TEST_F(IspTest, SendToNonCompliantIsFree) {
  params_.compliant = {true, true, false};
  Isp isp(0, params_, keys_.pub, 42);
  EXPECT_EQ(isp.user_send(0, 2, 1, mail(0, 0, 2, 1)), SendResult::kSentFree);
  EXPECT_EQ(isp.user(0).balance, params_.initial_user_balance);  // unchanged
  EXPECT_EQ(isp.credit()[2], 0);
  EXPECT_EQ(isp.user(0).sent, 0);  // free mail is not limit-counted
}

TEST_F(IspTest, ZeroBalanceRefused) {
  isp_.user(0).balance = 0;
  EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kNoBalance);
  EXPECT_EQ(isp_.metrics().refused_no_balance, 1u);
  EXPECT_TRUE(isp_.outbox_empty());
  EXPECT_EQ(isp_.credit()[1], 0);
}

TEST_F(IspTest, DailyLimitRefusesAndWarnsOnce) {
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
              SendResult::kSentPaid);
  // Sixth paid send of the day trips the limit.
  EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kDailyLimit);
  EXPECT_EQ(isp_.metrics().refused_daily_limit, 1u);
  EXPECT_EQ(isp_.metrics().zombie_warnings_sent, 1u);
  EXPECT_EQ(isp_.user(0).warnings, 1);
  // The warning was delivered locally to the user's inbox, free.
  ASSERT_FALSE(isp_.inbox(0).empty());
  EXPECT_EQ(isp_.inbox(0).back().paid, 0);
  // Further refusals do not re-warn the same day.
  isp_.user_send(0, 1, 0, mail(0, 0, 1, 0));
  EXPECT_EQ(isp_.metrics().zombie_warnings_sent, 1u);
}

TEST_F(IspTest, EndOfDayResetsSentAndWarnings) {
  for (int i = 0; i < 6; ++i) isp_.user_send(0, 1, 0, mail(0, 0, 1, 0));
  EXPECT_EQ(isp_.user(0).sent, 5);
  isp_.end_of_day();
  EXPECT_EQ(isp_.user(0).sent, 0);
  EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kSentPaid);
}

TEST_F(IspTest, LocalSendRespectsLimitToo) {
  isp_.user(0).limit = 1;
  EXPECT_EQ(isp_.user_send(0, 0, 1, mail(0, 0, 0, 1)),
            SendResult::kDeliveredLocally);
  EXPECT_EQ(isp_.user_send(0, 0, 1, mail(0, 0, 0, 1)),
            SendResult::kDailyLimit);
}

// --- Section 4.1: receiving ------------------------------------------------

TEST_F(IspTest, ReceiveFromCompliantPaysRecipient) {
  isp_.on_email(1, mail(1, 3, 0, 2).serialize());
  EXPECT_EQ(isp_.user(2).balance, params_.initial_user_balance + 1);
  EXPECT_EQ(isp_.credit()[1], -1);
  EXPECT_EQ(isp_.metrics().emails_received_compliant, 1u);
  ASSERT_EQ(isp_.inbox(2).size(), 1u);
  EXPECT_EQ(isp_.inbox(2)[0].paid, 1);
}

TEST_F(IspTest, ReceiveFromNonCompliantPaysNothing) {
  params_.compliant = {true, true, false};
  Isp isp(0, params_, keys_.pub, 42);
  isp.on_email(2, mail(2, 0, 0, 1).serialize());
  EXPECT_EQ(isp.user(1).balance, params_.initial_user_balance);
  EXPECT_EQ(isp.credit()[2], 0);
  EXPECT_EQ(isp.metrics().emails_received_noncompliant, 1u);
  EXPECT_EQ(isp.inbox(1).size(), 1u);  // kAccept policy delivers
}

TEST_F(IspTest, SegregatePolicyMarksJunk) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kSegregate;
  Isp isp(0, params_, keys_.pub, 42);
  isp.on_email(2, mail(2, 0, 0, 1).serialize());
  ASSERT_EQ(isp.inbox(1).size(), 1u);
  EXPECT_TRUE(isp.inbox(1)[0].junk);
  EXPECT_EQ(isp.metrics().emails_segregated, 1u);
}

TEST_F(IspTest, DiscardPolicyDropsMail) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kDiscard;
  Isp isp(0, params_, keys_.pub, 42);
  isp.on_email(2, mail(2, 0, 0, 1).serialize());
  EXPECT_TRUE(isp.inbox(1).empty());
  EXPECT_EQ(isp.metrics().emails_discarded, 1u);
}

TEST_F(IspTest, FilterPolicyConsultsFilter) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kFilter;
  Isp isp(0, params_, keys_.pub, 42);
  isp.set_filter([](const net::EmailMessage& m) {
    return m.truth == net::MailClass::kSpam;
  });
  isp.on_email(2, mail(2, 0, 0, 1, net::MailClass::kSpam).serialize());
  isp.on_email(2, mail(2, 0, 0, 1).serialize());
  EXPECT_EQ(isp.metrics().emails_filtered_out, 1u);
  EXPECT_EQ(isp.inbox(1).size(), 1u);
}

TEST_F(IspTest, PerUserPolicyOverridesIspDefault) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kAccept;
  Isp isp(0, params_, keys_.pub, 42);
  // User 1 opts into discarding legacy mail; user 2 keeps the default.
  isp.users().set_policy_override(1, NonCompliantPolicy::kDiscard);
  isp.on_email(2, mail(2, 0, 0, 1).serialize());
  isp.on_email(2, mail(2, 0, 0, 2).serialize());
  EXPECT_TRUE(isp.inbox(1).empty());
  EXPECT_EQ(isp.inbox(2).size(), 1u);
  EXPECT_EQ(isp.metrics().emails_discarded, 1u);
}

TEST_F(IspTest, PerUserSegregationOverride) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kDiscard;
  Isp isp(0, params_, keys_.pub, 42);
  // User 3 is more permissive than the ISP default.
  isp.users().set_policy_override(3, NonCompliantPolicy::kSegregate);
  isp.on_email(2, mail(2, 0, 0, 3).serialize());
  ASSERT_EQ(isp.inbox(3).size(), 1u);
  EXPECT_TRUE(isp.inbox(3)[0].junk);
}

TEST_F(IspTest, FilterPolicyFailsOpenWithoutFilter) {
  params_.compliant = {true, true, false};
  params_.noncompliant_policy = NonCompliantPolicy::kFilter;
  Isp isp(0, params_, keys_.pub, 42);
  isp.on_email(2, mail(2, 0, 0, 1, net::MailClass::kSpam).serialize());
  EXPECT_EQ(isp.inbox(1).size(), 1u);
}

TEST_F(IspTest, MalformedEmailPayloadCounted) {
  isp_.on_email(1, {0xDE, 0xAD});
  EXPECT_EQ(isp_.metrics().bad_envelopes, 1u);
}

TEST_F(IspTest, MisroutedRecipientRejected) {
  // Recipient belongs to ISP 1, delivered to ISP 0.
  isp_.on_email(1, mail(1, 0, 1, 2).serialize());
  EXPECT_EQ(isp_.metrics().bad_envelopes, 1u);
}

// --- Section 4.2: user trades ----------------------------------------------

TEST_F(IspTest, UserBuyMovesMoneyAndPennies) {
  ASSERT_TRUE(isp_.user_buy(0, 20));
  EXPECT_EQ(isp_.user(0).balance, 30);
  EXPECT_EQ(isp_.user(0).account,
            params_.initial_user_account - Money::from_epennies(20));
  EXPECT_EQ(isp_.avail(), 80);
  EXPECT_EQ(isp_.till(), Money::from_epennies(20));
}

TEST_F(IspTest, UserBuyRefusedWhenAccountShort) {
  isp_.user(0).account = Money::from_epennies(5);
  EXPECT_FALSE(isp_.user_buy(0, 10));
  EXPECT_EQ(isp_.user(0).balance, 10);
}

TEST_F(IspTest, UserBuyRefusedWhenPoolShort) {
  isp_.set_avail(3);
  EXPECT_FALSE(isp_.user_buy(0, 10));
}

TEST_F(IspTest, UserSellRoundTripsBuy) {
  ASSERT_TRUE(isp_.user_buy(0, 20));
  ASSERT_TRUE(isp_.user_sell(0, 20));
  EXPECT_EQ(isp_.user(0).balance, 10);
  EXPECT_EQ(isp_.user(0).account, params_.initial_user_account);
  EXPECT_EQ(isp_.avail(), 100);
  EXPECT_TRUE(isp_.till().is_zero());
}

TEST_F(IspTest, UserSellRefusedBeyondBalance) {
  EXPECT_FALSE(isp_.user_sell(0, 11));
  EXPECT_TRUE(isp_.user_sell(0, 10));
  EXPECT_EQ(isp_.user(0).balance, 0);
}

TEST_F(IspTest, NonPositiveTradesRejected) {
  EXPECT_FALSE(isp_.user_buy(0, 0));
  EXPECT_FALSE(isp_.user_buy(0, -5));
  EXPECT_FALSE(isp_.user_sell(0, 0));
}

// --- Section 4.3: bank trades ----------------------------------------------

class IspBankTest : public IspTest {
 protected:
  IspBankTest() : bank_(params_, keys_, 7) {}

  // Routes the ISP's outbox through the bank and returns replies delivered.
  void pump_through_bank(Isp& isp) {
    for (const Outbound& o : isp.take_outbox()) {
      ASSERT_EQ(o.dest, Outbound::Dest::kBank);
      if (o.type == kMsgBuy) {
        const crypto::Bytes reply = bank_.on_buy(isp.index(), o.payload);
        if (!reply.empty()) isp.on_buyreply(reply);
      } else if (o.type == kMsgSell) {
        const crypto::Bytes reply = bank_.on_sell(isp.index(), o.payload);
        if (!reply.empty()) isp.on_sellreply(reply);
      }
    }
  }

  Bank bank_;
};

TEST_F(IspBankTest, RefillsPoolWhenBelowMinavail) {
  isp_.set_avail(10);  // below minavail=50
  isp_.maybe_trade_with_bank();
  EXPECT_EQ(isp_.metrics().bank_buys_attempted, 1u);
  pump_through_bank(isp_);
  EXPECT_EQ(isp_.avail(), params_.maxavail);  // refilled to the upper bound
  EXPECT_EQ(isp_.metrics().bank_buys_accepted, 1u);
  EXPECT_EQ(bank_.account(0), params_.initial_isp_bank_account -
                                  Money::from_epennies(params_.maxavail - 10));
}

TEST_F(IspBankTest, SellsSurplusAboveMaxavail) {
  isp_.set_avail(300);  // above maxavail=200
  isp_.maybe_trade_with_bank();
  EXPECT_EQ(isp_.metrics().bank_sells, 1u);
  EXPECT_EQ(isp_.avail(), 200);  // reserved at initiation (race fix)
  pump_through_bank(isp_);
  EXPECT_EQ(isp_.avail(), 200);
  EXPECT_EQ(bank_.account(0), params_.initial_isp_bank_account +
                                  Money::from_epennies(100));
}

TEST_F(IspBankTest, NoTradeInsideBand) {
  isp_.set_avail(100);
  isp_.maybe_trade_with_bank();
  EXPECT_TRUE(isp_.outbox_empty());
}

TEST_F(IspBankTest, BuyRejectedWhenBankAccountShort) {
  bank_.set_account(0, Money::from_epennies(5));
  isp_.set_avail(10);
  isp_.maybe_trade_with_bank();
  pump_through_bank(isp_);
  EXPECT_EQ(isp_.avail(), 10);  // rejected: nothing credited
  EXPECT_EQ(isp_.metrics().bank_buys_accepted, 0u);
  EXPECT_EQ(bank_.metrics().buys_rejected, 1u);
  // canbuy was restored: another attempt goes out.
  isp_.maybe_trade_with_bank();
  EXPECT_EQ(isp_.metrics().bank_buys_attempted, 2u);
}

TEST_F(IspBankTest, ReplayedBuyReplyIgnored) {
  isp_.set_avail(10);
  isp_.maybe_trade_with_bank();
  crypto::Bytes reply;
  for (const Outbound& o : isp_.take_outbox())
    reply = bank_.on_buy(0, o.payload);
  ASSERT_FALSE(reply.empty());
  isp_.on_buyreply(reply);
  const EPenny after_first = isp_.avail();
  // Replay the same (validly sealed) reply: the nonce no longer matches.
  isp_.on_buyreply(reply);
  EXPECT_EQ(isp_.avail(), after_first);
  EXPECT_EQ(isp_.metrics().bad_nonce_replies, 1u);
}

TEST_F(IspBankTest, ReplayedSellReplyIgnored) {
  isp_.set_avail(300);
  isp_.maybe_trade_with_bank();
  crypto::Bytes reply;
  for (const Outbound& o : isp_.take_outbox())
    reply = bank_.on_sell(0, o.payload);
  ASSERT_FALSE(reply.empty());
  isp_.on_sellreply(reply);
  const EPenny after_first = isp_.avail();
  isp_.on_sellreply(reply);
  EXPECT_EQ(isp_.avail(), after_first);
  EXPECT_EQ(isp_.metrics().bad_nonce_replies, 1u);
}

TEST_F(IspBankTest, GarbageBuyReplyCounted) {
  isp_.on_buyreply({1, 2, 3});
  EXPECT_EQ(isp_.metrics().bad_envelopes, 1u);
}

// --- Section 4.4: snapshot -------------------------------------------------

class IspSnapshotTest : public IspBankTest {
 protected:
  crypto::Bytes make_request(std::uint64_t seq) {
    return seal(keys_.priv, SnapshotRequest{seq}.serialize(), req_rng_);
  }
  Rng req_rng_{303};
};

TEST_F(IspSnapshotTest, RequestQuiescesAndTimeoutReports) {
  isp_.user_send(0, 1, 0, mail(0, 0, 1, 0));
  isp_.take_outbox();
  EXPECT_EQ(isp_.credit()[1], 1);

  isp_.on_request(make_request(0));
  EXPECT_TRUE(isp_.in_quiesce());
  EXPECT_FALSE(isp_.cansend());

  isp_.on_quiesce_timeout();
  EXPECT_FALSE(isp_.in_quiesce());
  EXPECT_TRUE(isp_.cansend());
  EXPECT_EQ(isp_.seq(), 1u);
  EXPECT_EQ(isp_.credit()[1], 0);  // reset for the new billing period

  const auto out = isp_.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kMsgReply);
  const auto plain = unseal(keys_.priv, out[0].payload);
  ASSERT_TRUE(plain.has_value());
  const auto report = CreditReport::deserialize(*plain);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->seq, 0u);
  EXPECT_EQ(report->credit[1], 1);
}

TEST_F(IspSnapshotTest, StaleSeqIgnored) {
  isp_.on_request(make_request(5));
  EXPECT_FALSE(isp_.in_quiesce());
  EXPECT_TRUE(isp_.cansend());
  EXPECT_EQ(isp_.metrics().stale_requests, 1u);
}

TEST_F(IspSnapshotTest, ReplayedRequestIgnoredAfterRound) {
  const crypto::Bytes req = make_request(0);
  isp_.on_request(req);
  isp_.on_quiesce_timeout();
  isp_.take_outbox();
  // Replay of round-0 request: seq is now 1, so it must be ignored.
  isp_.on_request(req);
  EXPECT_FALSE(isp_.in_quiesce());
  EXPECT_EQ(isp_.metrics().stale_requests, 1u);
}

TEST_F(IspSnapshotTest, MailBuffersDuringQuiesceAndFlushesAfter) {
  isp_.on_request(make_request(0));
  EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kBuffered);
  // Payment committed immediately; transmission withheld.
  EXPECT_EQ(isp_.user(0).balance, 9);
  EXPECT_EQ(isp_.buffered_paid(), 1);
  EXPECT_EQ(isp_.credit()[1], 0);  // credit only at transmission
  EXPECT_TRUE(isp_.outbox_empty());

  isp_.on_quiesce_timeout();
  EXPECT_EQ(isp_.buffered_paid(), 0);
  EXPECT_EQ(isp_.credit()[1], 1);  // next billing period carries it
  const auto out = isp_.take_outbox();
  ASSERT_EQ(out.size(), 2u);  // reply to bank + the flushed email
  EXPECT_EQ(out[0].type, kMsgReply);
  EXPECT_EQ(out[1].type, kMsgEmail);
}

TEST_F(IspSnapshotTest, LocalDeliveryStillWorksDuringQuiesce) {
  isp_.on_request(make_request(0));
  EXPECT_EQ(isp_.user_send(0, 0, 1, mail(0, 0, 0, 1)),
            SendResult::kDeliveredLocally);
  EXPECT_EQ(isp_.user(1).balance, 11);
}

TEST_F(IspSnapshotTest, QuiesceTimeoutWithoutRequestIsNoop) {
  isp_.on_quiesce_timeout();
  EXPECT_TRUE(isp_.outbox_empty());
  EXPECT_EQ(isp_.seq(), 0u);
}

// --- Section 5: acknowledgments --------------------------------------------

TEST_F(IspTest, MailingListMailTriggersAutoAck) {
  // A list message arrives from ISP 1 carrying the ack header pointing at a
  // distributor on ISP 1.
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", net::make_user_address(1, 0).str());
  isp_.on_email(1, msg.serialize());

  // Recipient got the e-penny then immediately spent it on the ack.
  EXPECT_EQ(isp_.user(2).balance, params_.initial_user_balance);
  EXPECT_EQ(isp_.metrics().acks_generated, 1u);
  // Ack goes back to ISP 1 as a paid email (credit 1 out, 1 in => 0 net...
  // here: -1 from receipt, +1 from ack).
  EXPECT_EQ(isp_.credit()[1], 0);
  const auto out = isp_.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto ack = net::EmailMessage::deserialize(out[0].payload);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->header("X-Zmail-Acknowledgment").has_value());
  EXPECT_EQ(ack->truth, net::MailClass::kAcknowledgment);
}

TEST_F(IspTest, AckNotGeneratedWhenDisabled) {
  params_.auto_acknowledge_lists = false;
  Isp isp(0, params_, keys_.pub, 42);
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", net::make_user_address(1, 0).str());
  isp.on_email(1, msg.serialize());
  EXPECT_EQ(isp.metrics().acks_generated, 0u);
  EXPECT_EQ(isp.user(2).balance, params_.initial_user_balance + 1);
}

TEST_F(IspTest, IncomingAckIsAbsorbedNotDelivered) {
  net::EmailMessage ack = mail(1, 3, 0, 1, net::MailClass::kAcknowledgment);
  ack.set_header("X-Zmail-Acknowledgment", "1");
  isp_.on_email(1, ack.serialize());
  EXPECT_EQ(isp_.metrics().acks_received, 1u);
  EXPECT_TRUE(isp_.inbox(1).empty());          // processed automatically
  EXPECT_EQ(isp_.user(1).balance, 11);         // but the e-penny arrived
}

TEST_F(IspTest, AckSinkObservesAcks) {
  UserId observed_user = kInvalidUser;
  isp_.set_ack_sink([&](UserId u, const net::EmailMessage&) {
    observed_user = u;
  });
  net::EmailMessage ack = mail(1, 3, 0, 1, net::MailClass::kAcknowledgment);
  ack.set_header("X-Zmail-Acknowledgment", "1");
  isp_.on_email(1, ack.serialize());
  EXPECT_EQ(observed_user, UserId(1));
}

TEST_F(IspTest, LocalListDeliveryAlsoAcks) {
  // Distributor and subscriber on the same ISP.
  net::EmailMessage msg = mail(0, 0, 0, 1, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", net::make_user_address(0, 0).str());
  EXPECT_EQ(isp_.user_send(0, 0, 1, msg), SendResult::kDeliveredLocally);
  // Distributor paid 1 to send, got 1 back via the local ack.
  EXPECT_EQ(isp_.user(0).balance, 10);
  EXPECT_EQ(isp_.user(1).balance, 10);
  EXPECT_EQ(isp_.metrics().acks_generated, 1u);
  EXPECT_EQ(isp_.metrics().acks_received, 1u);
}

TEST_F(IspTest, AcksDoNotCountAgainstTheDailyLimit) {
  // A user at their sending limit still acknowledges list mail: acks are
  // ISP-generated and bounded by mail *received*, not sent.
  isp_.user(2).limit = 0;
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", net::make_user_address(1, 0).str());
  isp_.on_email(1, msg.serialize());
  EXPECT_EQ(isp_.metrics().acks_generated, 1u);
  EXPECT_EQ(isp_.user(2).sent, 0);
}

TEST_F(IspTest, MalformedAckToHeaderIsIgnored) {
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", "not-an-address");
  isp_.on_email(1, msg.serialize());
  EXPECT_EQ(isp_.metrics().acks_generated, 0u);
  // The e-penny still arrived; the message was still delivered.
  EXPECT_EQ(isp_.user(2).balance, params_.initial_user_balance + 1);
  EXPECT_EQ(isp_.inbox(2).size(), 1u);
}

TEST_F(IspTest, AckToForeignDomainIgnored) {
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", "list@gmail.example");  // not simulated
  isp_.on_email(1, msg.serialize());
  EXPECT_EQ(isp_.metrics().acks_generated, 0u);
}

TEST_F(IspTest, AckToOutOfRangeIspIgnored) {
  net::EmailMessage msg = mail(1, 0, 0, 2, net::MailClass::kMailingList);
  msg.set_header("X-Zmail-Ack-To", net::make_user_address(99, 0).str());
  isp_.on_email(1, msg.serialize());
  EXPECT_EQ(isp_.metrics().acks_generated, 0u);
  EXPECT_TRUE(isp_.outbox_empty());
}

// --- Misbehavior -----------------------------------------------------------

TEST_F(IspTest, FreeRideMisbehaviorSkipsAccounting) {
  isp_.set_misbehavior(Isp::Misbehavior::kFreeRide);
  EXPECT_EQ(isp_.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kSentPaid);
  EXPECT_EQ(isp_.user(0).balance, 10);  // not charged
  EXPECT_EQ(isp_.credit()[1], 0);       // no credit entry
  EXPECT_EQ(isp_.take_outbox().size(), 1u);  // mail still goes out
}

// --- Quarantine (Section 5 extension) ---------------------------------------

TEST_F(IspTest, QuarantineAfterRepeatedWarnings) {
  params_.quarantine_after_warnings = 2;
  params_.initial_user_balance = 100;  // the limit binds before the funds
  Isp isp(0, params_, keys_.pub, 42);
  // Day 1: hit the limit -> warning 1.
  for (int i = 0; i < 6; ++i) isp.user_send(0, 1, 0, mail(0, 0, 1, 0));
  EXPECT_EQ(isp.user(0).warnings, 1);
  EXPECT_FALSE(isp.user(0).quarantined);
  isp.end_of_day();
  // Day 2: again -> warning 2 -> quarantined.
  for (int i = 0; i < 6; ++i) isp.user_send(0, 1, 0, mail(0, 0, 1, 0));
  EXPECT_EQ(isp.user(0).warnings, 2);
  EXPECT_TRUE(isp.user(0).quarantined);
  // The quarantine survives the daily reset, unlike the limit block.
  isp.end_of_day();
  EXPECT_EQ(isp.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kQuarantined);
  EXPECT_EQ(isp.user_send(0, 0, 1, mail(0, 0, 0, 1)),
            SendResult::kQuarantined);  // local sends blocked too
}

TEST_F(IspTest, ReleaseLiftsQuarantine) {
  params_.quarantine_after_warnings = 1;
  Isp isp(0, params_, keys_.pub, 42);
  for (int i = 0; i < 6; ++i) isp.user_send(0, 1, 0, mail(0, 0, 1, 0));
  ASSERT_TRUE(isp.user(0).quarantined);
  isp.release_user(0);
  isp.end_of_day();
  EXPECT_EQ(isp.user_send(0, 1, 0, mail(0, 0, 1, 0)),
            SendResult::kSentPaid);
  EXPECT_EQ(isp.user(0).warnings, 0);
}

TEST_F(IspTest, QuarantineDisabledByDefault) {
  isp_.user(0).balance = 100;  // the limit binds before the funds
  for (int day = 0; day < 3; ++day) {
    for (int i = 0; i < 6; ++i) isp_.user_send(0, 1, 0, mail(0, 0, 1, 0));
    isp_.end_of_day();
  }
  EXPECT_FALSE(isp_.user(0).quarantined);
  EXPECT_EQ(isp_.user(0).warnings, 3);
}

// --- Conservation helper ---------------------------------------------------

TEST_F(IspTest, EPenniesHeldSumsUsersAndPool) {
  EXPECT_EQ(isp_.epennies_held(),
            params_.initial_avail +
                4 * params_.initial_user_balance);
  isp_.user_buy(0, 10);  // internal move: total unchanged
  EXPECT_EQ(isp_.epennies_held(),
            params_.initial_avail + 4 * params_.initial_user_balance);
}

TEST(SendResultNames, AllDistinct) {
  EXPECT_STREQ(send_result_name(SendResult::kSentPaid), "sent-paid");
  EXPECT_STREQ(send_result_name(SendResult::kBuffered), "buffered");
  EXPECT_STREQ(send_result_name(SendResult::kNoBalance), "no-balance");
  EXPECT_STREQ(send_result_name(SendResult::kDailyLimit), "daily-limit");
}

}  // namespace
}  // namespace zmail::core
