// Fixed-point money arithmetic.
//
// Zmail's accounting (Section 4 of the paper) moves two currencies around:
// real money (dollars, held in `account` arrays) and e-pennies (held in
// `balance`/`avail`).  E-pennies are integral by construction.  Real money is
// represented in micro-dollars (1e-6 USD) as a strong type so that dollars
// and e-pennies can never be silently mixed; the exchange rate lives in one
// place (`Money::from_epennies`, at the paper's $0.01 per e-penny).
#pragma once

#include <cstdint>
#include <string>

#include "util/assert.hpp"

namespace zmail {

// Count of e-pennies.  Signed so that per-peer `credit` bookkeeping (which
// legitimately goes negative) reuses the same type.
using EPenny = std::int64_t;

// Real money in micro-dollars, as a value type with checked arithmetic.
class Money {
 public:
  static constexpr std::int64_t kMicrosPerDollar = 1'000'000;
  // The paper's simplifying assumption: one e-penny costs $0.01.
  static constexpr std::int64_t kMicrosPerEPenny = kMicrosPerDollar / 100;

  constexpr Money() noexcept = default;

  static constexpr Money from_micros(std::int64_t micros) noexcept {
    return Money(micros);
  }
  static constexpr Money from_dollars(double dollars) noexcept {
    return Money(static_cast<std::int64_t>(
        dollars * static_cast<double>(kMicrosPerDollar) +
        (dollars >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Money from_cents(std::int64_t cents) noexcept {
    return Money(cents * (kMicrosPerDollar / 100));
  }
  static constexpr Money from_epennies(EPenny n) noexcept {
    return Money(n * kMicrosPerEPenny);
  }
  static constexpr Money zero() noexcept { return Money(0); }

  constexpr std::int64_t micros() const noexcept { return micros_; }
  constexpr double dollars() const noexcept {
    return static_cast<double>(micros_) / kMicrosPerDollar;
  }
  // Whole e-pennies purchasable with this amount (floor).
  constexpr EPenny whole_epennies() const noexcept {
    return micros_ / kMicrosPerEPenny;
  }

  constexpr bool is_zero() const noexcept { return micros_ == 0; }
  constexpr bool is_negative() const noexcept { return micros_ < 0; }

  constexpr Money operator+(Money o) const noexcept {
    return Money(micros_ + o.micros_);
  }
  constexpr Money operator-(Money o) const noexcept {
    return Money(micros_ - o.micros_);
  }
  constexpr Money operator-() const noexcept { return Money(-micros_); }
  constexpr Money operator*(std::int64_t k) const noexcept {
    return Money(micros_ * k);
  }
  // Disambiguates integer literals against the double overload.
  constexpr Money operator*(int k) const noexcept {
    return *this * static_cast<std::int64_t>(k);
  }
  Money operator*(double k) const noexcept {
    return Money(static_cast<std::int64_t>(static_cast<double>(micros_) * k +
                                           (micros_ >= 0 ? 0.5 : -0.5)));
  }
  constexpr Money& operator+=(Money o) noexcept {
    micros_ += o.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money o) noexcept {
    micros_ -= o.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Money&) const noexcept = default;

  // "$12.34" / "-$0.000150" style rendering; trims to the needed precision.
  std::string str() const;

 private:
  constexpr explicit Money(std::int64_t micros) noexcept : micros_(micros) {}
  std::int64_t micros_ = 0;
};

constexpr Money operator*(std::int64_t k, Money m) noexcept { return m * k; }

}  // namespace zmail
