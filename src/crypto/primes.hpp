// Modular arithmetic and probabilistic primality testing.
//
// Supports the RSA-style keypair used to realize the paper's B_b/R_b
// (bank public/private key) and the NCR/DCR operations of Section 4.3.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace zmail::crypto {

// (a * b) mod m without overflow, via 128-bit intermediate.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                     std::uint64_t m) noexcept;

// (base ^ exp) mod m.
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                     std::uint64_t m) noexcept;

// Deterministic Miller-Rabin for 64-bit integers (known witness set).
bool is_prime_u64(std::uint64_t n) noexcept;

// Random prime with exactly `bits` bits (2..62), using the provided Rng.
std::uint64_t random_prime(zmail::Rng& rng, int bits) noexcept;

// Extended GCD; returns g and sets x, y with a*x + b*y = g.
std::int64_t egcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                  std::int64_t& y) noexcept;

// Modular inverse of a mod m; requires gcd(a, m) == 1.
std::uint64_t modinv(std::uint64_t a, std::uint64_t m) noexcept;

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace zmail::crypto
