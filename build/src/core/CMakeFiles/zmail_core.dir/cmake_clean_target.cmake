file(REMOVE_RECURSE
  "libzmail_core.a"
)
