// zmail::trace unit tests: id minting, the implicit causal context, the
// replay guard, ring wraparound, span reconstruction, exporter round-trips
// (binary and chrome JSON, the latter re-parsed through util::json), the
// per-stage breakdown, profiling histograms, and the util::log mirror.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace zmail::trace {
namespace {

// Every test starts from a quiet recorder and leaves one behind; the
// recorder is process-global state shared across the whole test binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    clear();
    reset_profiles();
    set_enabled(true);
    set_sim_now(0);
  }
  void TearDown() override {
    remove_log_mirror();
    set_enabled(false);
    clear();
  }
};

TEST_F(TraceTest, NextIdMintsDistinctNonzeroIds) {
  const TraceId a = next_id();
  const TraceId b = next_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TraceTest, NextIdReturnsZeroWhenDisabled) {
  set_enabled(false);
  EXPECT_EQ(next_id(), 0u);
}

TEST_F(TraceTest, EmitIsNoOpWhenDisabled) {
  set_enabled(false);
  instant(Ev::kDeliver, 7, 0);
  set_enabled(true);
  EXPECT_TRUE(collect().empty());
}

TEST_F(TraceTest, ScopeNestsAndRestores) {
  EXPECT_EQ(current(), 0u);
  {
    Scope outer(11);
    EXPECT_EQ(current(), 11u);
    {
      Scope inner(22);
      EXPECT_EQ(current(), 22u);
    }
    EXPECT_EQ(current(), 11u);
  }
  EXPECT_EQ(current(), 0u);
}

TEST_F(TraceTest, ReplayGuardSuppressesEmissionAndMinting) {
  {
    ReplayGuard guard;
    EXPECT_TRUE(suppressed());
    EXPECT_EQ(next_id(), 0u);
    instant(Ev::kDeliver, 5, 0);
  }
  EXPECT_FALSE(suppressed());
  EXPECT_TRUE(collect().empty());
  instant(Ev::kDeliver, 5, 0);
  EXPECT_EQ(collect().size(), 1u);
}

TEST_F(TraceTest, EventsCarrySimTimeAndMonotonicSeq) {
  set_sim_now(1'000);
  instant(Ev::kSubmit, 1, 2, 3, 4);
  set_sim_now(2'000);
  instant(Ev::kDeliver, 1, 2);
  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sim_us, 1'000);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[0].host, 2u);
  EXPECT_EQ(events[0].arg0, 3u);
  EXPECT_EQ(events[0].arg1, 4u);
  EXPECT_EQ(events[1].sim_us, 2'000);
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST_F(TraceTest, RingWrapsKeepingTheNewestEvents) {
  // Capacity applies to rings created after the call, so emit from a fresh
  // thread; the main thread's ring was already built at default capacity.
  set_ring_capacity(8);
  const std::uint64_t before_dropped = dropped();
  std::thread writer([] {
    for (std::uint64_t i = 0; i < 20; ++i)
      instant(Ev::kDeliver, 1'000 + i, 3);
  });
  writer.join();
  set_ring_capacity(1 << 16);  // restore for later tests' threads

  std::vector<TraceEvent> mine;
  for (const TraceEvent& e : collect())
    if (e.id >= 1'000) mine.push_back(e);
  ASSERT_EQ(mine.size(), 8u);
  // The survivors are the newest 8 of the 20, still in emission order.
  for (std::size_t i = 0; i < mine.size(); ++i)
    EXPECT_EQ(mine[i].id, 1'000 + 12 + i);
  EXPECT_EQ(dropped() - before_dropped, 12u);
}

TEST_F(TraceTest, SpanScopeEmitsBeginAndEndWithFinalArg) {
  {
    SpanScope span(Ev::kCheckpoint, 0, 4, 17);
    span.set_end_arg0(99);
  }
  const auto events = collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, static_cast<std::uint8_t>(Phase::kBegin));
  EXPECT_EQ(events[0].arg0, 17u);
  EXPECT_EQ(events[1].phase, static_cast<std::uint8_t>(Phase::kEnd));
  EXPECT_EQ(events[1].arg0, 99u);
}

TEST_F(TraceTest, BuildSpansMatchesBeginEndPairs) {
  set_sim_now(10);
  begin(Ev::kMessage, 42, 0);
  set_sim_now(15);
  begin(Ev::kClassify, 42, 1);
  set_sim_now(20);
  end(Ev::kClassify, 42, 1);
  set_sim_now(30);
  end(Ev::kMessage, 42, 1);
  begin(Ev::kCheckpoint, 0, 2);  // host-scoped, left open
  const auto spans = build_spans(collect());
  ASSERT_EQ(spans.size(), 3u);
  int closed = 0;
  for (const Span& s : spans) {
    if (!s.closed) {
      EXPECT_EQ(s.type, Ev::kCheckpoint);
      continue;
    }
    ++closed;
    if (s.type == Ev::kMessage) {
      EXPECT_EQ(s.begin_us, 10);
      EXPECT_EQ(s.end_us, 30);
      EXPECT_EQ(s.begin_host, 0u);
      EXPECT_EQ(s.end_host, 1u);
    } else {
      EXPECT_EQ(s.type, Ev::kClassify);
      EXPECT_EQ(s.duration_us(), 5);
    }
  }
  EXPECT_EQ(closed, 2);
}

TEST_F(TraceTest, ValidateFlagsDoubleMintedRoots) {
  begin(Ev::kMessage, 7, 0);
  end(Ev::kMessage, 7, 0);
  begin(Ev::kMessage, 7, 0);  // re-mint: crash replay gone wrong
  end(Ev::kMessage, 7, 0);
  const ValidationResult v = validate(collect());
  EXPECT_FALSE(v.ok);
  ASSERT_FALSE(v.problems.empty());
}

TEST_F(TraceTest, ValidateForgivesSpansInterruptedByRecovery) {
  set_sim_now(100);
  begin(Ev::kBankBuy, 9, 2, 50);  // never ends: the ISP crashed
  set_sim_now(200);
  begin(Ev::kRecovery, 0, 2);
  set_sim_now(250);
  end(Ev::kRecovery, 0, 2);
  const ValidationResult v = validate(collect());
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
  EXPECT_EQ(v.spans_forgiven, 1u);
}

TEST_F(TraceTest, BreakdownAccountsClosedSpansPerStage) {
  set_sim_now(0);
  begin(Ev::kMessage, 1, 0);
  set_sim_now(40);
  end(Ev::kMessage, 1, 1);
  set_sim_now(100);
  begin(Ev::kBankBuy, 2, 0);
  set_sim_now(130);
  end(Ev::kBankBuy, 2, 0);
  const auto stages = breakdown(collect());
  ASSERT_EQ(stages.count("message"), 1u);
  ASSERT_EQ(stages.count("stamp_buy"), 1u);
  EXPECT_EQ(stages.at("message").total_us, 40);
  EXPECT_EQ(stages.at("stamp_buy").total_us, 30);
  EXPECT_EQ(stages.count("transit"), 0u);  // stage never occurred
}

TEST_F(TraceTest, BinaryExportRoundTrips) {
  set_sim_now(123);
  begin(Ev::kMessage, 0xABCDEF, 1, 7, 8);
  set_sim_now(456);
  end(Ev::kMessage, 0xABCDEF, 2);
  const auto events = collect();

  const std::string path =
      ::testing::TempDir() + "zmail_trace_roundtrip.trace";
  std::string err;
  ASSERT_TRUE(export_binary(path, events, {}, &err)) << err;

  std::vector<TraceEvent> loaded;
  std::vector<LogRecord> logs;
  ASSERT_TRUE(load(path, &loaded, &logs, &err)) << err;
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].seq, events[i].seq);
    EXPECT_EQ(loaded[i].sim_us, events[i].sim_us);
    EXPECT_EQ(loaded[i].wall_ns, events[i].wall_ns);
    EXPECT_EQ(loaded[i].id, events[i].id);
    EXPECT_EQ(loaded[i].arg0, events[i].arg0);
    EXPECT_EQ(loaded[i].arg1, events[i].arg1);
    EXPECT_EQ(loaded[i].host, events[i].host);
    EXPECT_EQ(loaded[i].type, events[i].type);
    EXPECT_EQ(loaded[i].phase, events[i].phase);
  }
}

TEST_F(TraceTest, ChromeExportParsesAndRoundTrips) {
  set_sim_now(10);
  begin(Ev::kMessage, 5, 0);
  instant(Ev::kNetSend, 5, 0, 1);
  set_sim_now(20);
  end(Ev::kMessage, 5, 1);
  begin(Ev::kCheckpoint, 0, 2);
  end(Ev::kCheckpoint, 0, 2);
  const auto events = collect();

  const std::string path = ::testing::TempDir() + "zmail_trace_chrome.json";
  std::string err;
  ASSERT_TRUE(export_chrome(path, events, {}, &err)) << err;

  // The file must be valid JSON in trace-event shape (util::json parses the
  // same bytes Perfetto would).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
    const auto parsed = json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    const json::Value* tev = parsed->find("traceEvents");
    ASSERT_NE(tev, nullptr);
    EXPECT_EQ(tev->size(), events.size());
    bool saw_async_begin = false;
    for (std::size_t i = 0; i < tev->size(); ++i)
      if (tev->at(i).find("ph") && tev->at(i).find("ph")->as_string() == "b")
        saw_async_begin = true;
    EXPECT_TRUE(saw_async_begin);
  }

  // And it must round-trip losslessly back through load().
  std::vector<TraceEvent> loaded;
  std::vector<LogRecord> logs;
  ASSERT_TRUE(load(path, &loaded, &logs, &err)) << err;
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].seq, events[i].seq);
    EXPECT_EQ(loaded[i].id, events[i].id);
    EXPECT_EQ(loaded[i].sim_us, events[i].sim_us);
    EXPECT_EQ(loaded[i].type, events[i].type);
    EXPECT_EQ(loaded[i].phase, events[i].phase);
  }
}

TEST_F(TraceTest, ProfileHistogramRecordsAndSnapshots) {
  ProfileHistogram h;
  h.record(100);
  h.record(1'000);
  h.record(10'000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total_ns, 11'100u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 10'000u);
  EXPECT_GT(s.percentile_ns(50), 0.0);
  EXPECT_GE(s.percentile_ns(99), s.percentile_ns(50));
}

TEST_F(TraceTest, ProfilesExportToJsonByName) {
  profile("test.alpha").record(500);
  profile("test.alpha").record(700);
  const json::Value j = profiles_to_json();
  const json::Value* alpha = j.find("test.alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->find("count")->as_uint64(), 2u);
}

TEST_F(TraceTest, ScopedTimerRespectsProfilingSwitch) {
  ProfileHistogram h;
  set_profiling_enabled(false);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 0u);
  set_profiling_enabled(true);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST_F(TraceTest, LogMirrorCapturesRecordsWithComponentFilter) {
  install_log_mirror();
  set_log_level(LogLevel::kWarn);
  set_component_log_level("tracetest", LogLevel::kDebug);
  ZMAIL_LOG(LogLevel::kDebug, "tracetest", "opened %d", 7);
  ZMAIL_LOG(LogLevel::kDebug, "othercomp", "below the global bar");
  clear_component_log_levels();
  set_log_level(LogLevel::kWarn);

  const auto logs = collect_logs();
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].tag, "tracetest");
  EXPECT_EQ(logs[0].text, "opened 7");
  EXPECT_EQ(logs[0].ev.type, static_cast<std::uint8_t>(Ev::kLog));
}

}  // namespace
}  // namespace zmail::trace
