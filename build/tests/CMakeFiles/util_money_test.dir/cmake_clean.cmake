file(REMOVE_RECURSE
  "CMakeFiles/util_money_test.dir/util_money_test.cpp.o"
  "CMakeFiles/util_money_test.dir/util_money_test.cpp.o.d"
  "util_money_test"
  "util_money_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_money_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
