#include "net/address.hpp"

#include <cctype>

namespace zmail::net {

namespace {
bool valid_part(std::string_view part) noexcept {
  if (part.empty()) return false;
  for (char c : part) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '.' || c == '-' || c == '_' || c == '+')
      continue;
    return false;
  }
  // Dots must not lead, trail, or double.
  if (part.front() == '.' || part.back() == '.') return false;
  for (std::size_t i = 1; i < part.size(); ++i)
    if (part[i] == '.' && part[i - 1] == '.') return false;
  return true;
}
}  // namespace

std::optional<EmailAddress> parse_address(std::string_view s) {
  const std::size_t at = s.find('@');
  if (at == std::string_view::npos) return std::nullopt;
  if (s.find('@', at + 1) != std::string_view::npos) return std::nullopt;
  EmailAddress a{std::string(s.substr(0, at)), std::string(s.substr(at + 1))};
  if (!valid_part(a.local) || !valid_part(a.domain)) return std::nullopt;
  return a;
}

std::optional<EmailAddress> parse_path(std::string_view s) {
  if (s.size() < 2 || s.front() != '<' || s.back() != '>')
    return std::nullopt;
  return parse_address(s.substr(1, s.size() - 2));
}

EmailAddress make_user_address(std::size_t isp_index, std::size_t user_index) {
  return EmailAddress{"u" + std::to_string(user_index),
                      isp_domain(isp_index)};
}

std::string isp_domain(std::size_t isp_index) {
  return "isp" + std::to_string(isp_index) + ".example";
}

bool decode_user_address(const EmailAddress& a, std::size_t& isp_index,
                         std::size_t& user_index) {
  if (a.local.size() < 2 || a.local[0] != 'u') return false;
  if (a.domain.size() < 12 || a.domain.substr(0, 3) != "isp") return false;
  const std::size_t dot = a.domain.find('.');
  if (dot == std::string::npos || a.domain.substr(dot) != ".example")
    return false;
  try {
    user_index = std::stoul(a.local.substr(1));
    isp_index = std::stoul(a.domain.substr(3, dot - 3));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace zmail::net
