#include "net/smtp.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace zmail::net {
namespace {

EmailAddress addr(const char* s) { return *parse_address(s); }

class SmtpTest : public ::testing::Test {
 protected:
  std::vector<EmailMessage> delivered_;
  SmtpServerSession session_{"isp1.example", [this](const EmailMessage& m) {
                               delivered_.push_back(m);
                             }};
};

TEST_F(SmtpTest, GreetingIs220) {
  EXPECT_EQ(session_.greeting().code, 220);
  EXPECT_TRUE(session_.greeting().positive());
}

TEST_F(SmtpTest, FullDialogueDeliversMessage) {
  EXPECT_EQ(session_.consume_line("HELO isp0.example").code, 250);
  EXPECT_EQ(session_.consume_line("MAIL FROM:<u1@isp0.example>").code, 250);
  EXPECT_EQ(session_.consume_line("RCPT TO:<u2@isp1.example>").code, 250);
  EXPECT_EQ(session_.consume_line("DATA").code, 354);
  EXPECT_EQ(session_.consume_line("Subject: hi").code, 0);
  EXPECT_EQ(session_.consume_line("").code, 0);
  EXPECT_EQ(session_.consume_line("body line").code, 0);
  EXPECT_EQ(session_.consume_line(".").code, 250);
  EXPECT_EQ(session_.consume_line("QUIT").code, 221);
  EXPECT_TRUE(session_.quit_received());

  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].from.str(), "u1@isp0.example");
  EXPECT_EQ(delivered_[0].subject(), "hi");
  EXPECT_EQ(delivered_[0].body, "body line");
  EXPECT_EQ(session_.messages_accepted(), 1u);
}

TEST_F(SmtpTest, MailBeforeHeloRejected503) {
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c>").code, 503);
}

TEST_F(SmtpTest, RcptBeforeMailRejected503) {
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("RCPT TO:<a@b.c>").code, 503);
}

TEST_F(SmtpTest, DataBeforeRcptRejected503) {
  session_.consume_line("HELO x");
  session_.consume_line("MAIL FROM:<a@b.c>");
  EXPECT_EQ(session_.consume_line("DATA").code, 503);
}

TEST_F(SmtpTest, NestedMailRejected) {
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c>").code, 250);
  EXPECT_EQ(session_.consume_line("MAIL FROM:<d@e.f>").code, 503);
}

TEST_F(SmtpTest, BadPathSyntaxRejected501) {
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("MAIL FROM:a@b.c").code, 501);
  EXPECT_EQ(session_.consume_line("MAIL FROM:<not an address>").code, 501);
}

TEST_F(SmtpTest, HeloWithoutHostnameRejected501) {
  EXPECT_EQ(session_.consume_line("HELO").code, 501);
  EXPECT_EQ(session_.consume_line("HELO   ").code, 501);
}

TEST_F(SmtpTest, UnknownCommandRejected500) {
  EXPECT_EQ(session_.consume_line("FROB x").code, 500);
}

TEST_F(SmtpTest, CommandsAreCaseInsensitive) {
  EXPECT_EQ(session_.consume_line("helo isp0.example").code, 250);
  EXPECT_EQ(session_.consume_line("mail from:<a@b.c>").code, 250);
}

TEST_F(SmtpTest, RsetClearsTransaction) {
  session_.consume_line("HELO x");
  session_.consume_line("MAIL FROM:<a@b.c>");
  session_.consume_line("RCPT TO:<d@e.f>");
  EXPECT_EQ(session_.consume_line("RSET").code, 250);
  // After RSET a new MAIL FROM is accepted.
  EXPECT_EQ(session_.consume_line("MAIL FROM:<g@h.i>").code, 250);
}

TEST_F(SmtpTest, NoopAlwaysOk) {
  EXPECT_EQ(session_.consume_line("NOOP").code, 250);
}

TEST_F(SmtpTest, MultipleRecipientsAccepted) {
  session_.consume_line("HELO x");
  session_.consume_line("MAIL FROM:<a@b.c>");
  EXPECT_EQ(session_.consume_line("RCPT TO:<d@e.f>").code, 250);
  EXPECT_EQ(session_.consume_line("RCPT TO:<g@h.i>").code, 250);
  session_.consume_line("DATA");
  session_.consume_line("");
  session_.consume_line(".");
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].to.size(), 2u);
}

TEST_F(SmtpTest, DotStuffingRoundTrip) {
  EmailMessage msg = make_email(addr("a@b.c"), addr("u1@isp1.example"), "dots",
                                ".leading dot\n..double dot\nnormal");
  const SmtpTransferResult r = smtp_transfer(msg, "b.c", session_);
  EXPECT_TRUE(r.accepted);
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].body, ".leading dot\n..double dot\nnormal");
}

TEST_F(SmtpTest, TransferCountsBytesBothDirections) {
  EmailMessage msg =
      make_email(addr("a@b.c"), addr("u1@isp1.example"), "s", "hello");
  const SmtpTransferResult r = smtp_transfer(msg, "b.c", session_);
  EXPECT_TRUE(r.accepted);
  EXPECT_GT(r.bytes_client_to_server, 50u);
  EXPECT_GT(r.bytes_server_to_client, 30u);
  EXPECT_EQ(r.first_error_code, 0);
}

TEST_F(SmtpTest, ClientScriptShape) {
  EmailMessage msg =
      make_email(addr("a@b.c"), addr("d@e.f"), "s", "b1\nb2");
  const auto lines = smtp_client_script(msg, "b.c");
  ASSERT_GE(lines.size(), 7u);
  EXPECT_EQ(lines[0], "HELO b.c");
  EXPECT_EQ(lines[1], "MAIL FROM:<a@b.c>");
  EXPECT_EQ(lines[2], "RCPT TO:<d@e.f>");
  EXPECT_EQ(lines[3], "DATA");
  EXPECT_EQ(lines[lines.size() - 2], ".");
  EXPECT_EQ(lines.back(), "QUIT");
}

TEST_F(SmtpTest, SecondMessageOnSameSession) {
  EmailMessage m1 = make_email(addr("a@b.c"), addr("u1@isp1.example"), "1", "x");
  EmailMessage m2 = make_email(addr("a@b.c"), addr("u2@isp1.example"), "2", "y");
  EXPECT_TRUE(smtp_transfer(m1, "b.c", session_).accepted);
  EXPECT_TRUE(smtp_transfer(m2, "b.c", session_).accepted);
  EXPECT_EQ(delivered_.size(), 2u);
}

// --- Extensions: VRFY, HELP, SIZE ------------------------------------------

TEST_F(SmtpTest, VrfyWithoutVerifierIs252) {
  EXPECT_EQ(session_.consume_line("VRFY u1@isp1.example").code, 252);
}

TEST_F(SmtpTest, VrfyWithVerifier) {
  session_.set_verifier([](const EmailAddress& a) { return a.local == "u1"; });
  EXPECT_EQ(session_.consume_line("VRFY u1@isp1.example").code, 250);
  EXPECT_EQ(session_.consume_line("VRFY nobody@isp1.example").code, 550);
  EXPECT_EQ(session_.consume_line("VRFY").code, 501);
  EXPECT_EQ(session_.consume_line("VRFY not-an-address").code, 501);
}

TEST_F(SmtpTest, VerifierRejectsUnknownLocalRecipients) {
  session_.set_verifier([](const EmailAddress& a) { return a.local == "u1"; });
  session_.consume_line("HELO x");
  session_.consume_line("MAIL FROM:<a@b.c>");
  EXPECT_EQ(session_.consume_line("RCPT TO:<u1@isp1.example>").code, 250);
  EXPECT_EQ(session_.consume_line("RCPT TO:<u9@isp1.example>").code, 550);
  // Foreign domains are relayed without local verification.
  EXPECT_EQ(session_.consume_line("RCPT TO:<x@elsewhere.example>").code, 250);
}

TEST_F(SmtpTest, HelpListsCommands) {
  const SmtpReply r = session_.consume_line("HELP");
  EXPECT_EQ(r.code, 214);
  EXPECT_NE(r.text.find("DATA"), std::string::npos);
}

TEST_F(SmtpTest, SizeParameterAccepted) {
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c> SIZE=1000").code, 250);
}

TEST_F(SmtpTest, SizeParameterOverLimitRejected552) {
  session_.set_max_message_size(500);
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c> SIZE=1000").code, 552);
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c> SIZE=400").code, 250);
}

TEST_F(SmtpTest, BadSizeParameterRejected501) {
  session_.consume_line("HELO x");
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c> SIZE=abc").code, 501);
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c> FROB=1").code, 501);
}

TEST_F(SmtpTest, OversizedDataAborted552) {
  session_.set_max_message_size(64);
  session_.consume_line("HELO x");
  session_.consume_line("MAIL FROM:<a@b.c>");
  session_.consume_line("RCPT TO:<u1@isp1.example>");
  session_.consume_line("DATA");
  session_.consume_line("");
  SmtpReply last{0, ""};
  for (int i = 0; i < 10 && last.code == 0; ++i)
    last = session_.consume_line(std::string(32, 'x'));
  EXPECT_EQ(last.code, 552);
  EXPECT_EQ(delivered_.size(), 0u);
  // The session recovers for the next transaction.
  EXPECT_EQ(session_.consume_line("MAIL FROM:<a@b.c>").code, 250);
}

// --- Round-trip property fuzz ------------------------------------------------

class SmtpRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmtpRoundTripTest, ArbitraryBodiesSurviveTransfer) {
  zmail::Rng rng(GetParam());
  std::vector<EmailMessage> delivered;
  SmtpServerSession session("isp1.example", [&](const EmailMessage& m) {
    delivered.push_back(m);
  });
  for (int msg_i = 0; msg_i < 20; ++msg_i) {
    // Random body with newlines, leading dots, empty lines, punctuation.
    std::string body;
    const std::size_t lines = rng.next_below(6);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t len = rng.next_below(12);
      for (std::size_t c = 0; c < len; ++c) {
        static const char alphabet[] =
            "abcXYZ012 .,:;!?-_()[]<>@'\"$%&*+=/";
        body += alphabet[rng.next_below(sizeof(alphabet) - 1)];
      }
      if (l + 1 < lines) body += '\n';
    }
    EmailMessage msg = make_email(addr("a@b.c"), addr("u1@isp1.example"),
                                  "fuzz", body);
    const SmtpTransferResult r = smtp_transfer(msg, "b.c", session);
    ASSERT_TRUE(r.accepted) << "body: [" << body << "]";
    // Trailing empty lines are legitimately ambiguous in 821 framing; the
    // body must round-trip up to trailing-newline normalization.
    std::string want = body;
    while (!want.empty() && want.back() == '\n') want.pop_back();
    std::string got = delivered.back().body;
    while (!got.empty() && got.back() == '\n') got.pop_back();
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtpRoundTripTest,
                         ::testing::Range<std::uint64_t>(40, 46));

// State-machine fuzz: arbitrary command sequences never crash, always
// produce a known reply code, and leave the session recoverable.
class SmtpCommandFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmtpCommandFuzzTest, RandomCommandSequencesAreSafe) {
  zmail::Rng rng(GetParam());
  int delivered = 0;
  SmtpServerSession session("isp1.example",
                            [&delivered](const EmailMessage&) { ++delivered; });
  static const char* kLines[] = {
      "HELO x",       "EHLO y.example",
      "MAIL FROM:<a@b.c>", "MAIL FROM:<bad",
      "RCPT TO:<d@e.f>",   "RCPT TO:<>",
      "DATA",         ".",
      "body line",    "..stuffed",
      "RSET",         "NOOP",
      "VRFY a@b.c",   "HELP",
      "QUIT",         "",
      "FROBNICATE",   "MAIL FROM:<a@b.c> SIZE=10",
  };
  for (int i = 0; i < 400; ++i) {
    const char* line = kLines[rng.next_below(std::size(kLines))];
    const SmtpReply r = session.consume_line(line);
    switch (r.code) {
      case 0: case 214: case 220: case 221: case 250: case 252: case 354:
      case 500: case 501: case 503: case 550: case 552:
        break;
      default:
        FAIL() << "unexpected reply code " << r.code << " for '" << line
               << "'";
    }
  }
  // The session always recovers into a working transaction.
  session.consume_line("RSET");
  // If a previous DATA is still open, terminate it first.
  session.consume_line(".");
  session.consume_line("RSET");
  EXPECT_EQ(session.consume_line("HELO x").code, 250);
  EXPECT_EQ(session.consume_line("MAIL FROM:<a@b.c>").code, 250);
  EXPECT_EQ(session.consume_line("RCPT TO:<u@isp1.example>").code, 250);
  EXPECT_EQ(session.consume_line("DATA").code, 354);
  session.consume_line("");
  EXPECT_EQ(session.consume_line(".").code, 250);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtpCommandFuzzTest,
                         ::testing::Range<std::uint64_t>(70, 76));

TEST(ParseRfc822, SkipsMalformedHeaderLines) {
  const EmailMessage m = parse_rfc822(
      *parse_address("a@b.c"), {*parse_address("d@e.f")},
      {"Subject: ok", "this line has no colon", "", "body"});
  EXPECT_EQ(m.subject(), "ok");
  EXPECT_EQ(m.body, "body");
}

TEST(ParseRfc822, EmptyBody) {
  const EmailMessage m = parse_rfc822(*parse_address("a@b.c"),
                                      {*parse_address("d@e.f")},
                                      {"Subject: only headers", ""});
  EXPECT_EQ(m.body, "");
}

}  // namespace
}  // namespace zmail::net
