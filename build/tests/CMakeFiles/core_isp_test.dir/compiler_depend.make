# Empty compiler generated dependencies file for core_isp_test.
# This may be replaced when dependencies are built.
