# Empty compiler generated dependencies file for core_federated_system_test.
# This may be replaced when dependencies are built.
