file(REMOVE_RECURSE
  "CMakeFiles/zombie_outbreak.dir/zombie_outbreak.cpp.o"
  "CMakeFiles/zombie_outbreak.dir/zombie_outbreak.cpp.o.d"
  "zombie_outbreak"
  "zombie_outbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zombie_outbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
