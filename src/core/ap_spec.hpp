// Executable Abstract-Protocol rendition of the Zmail specification.
//
// This is a *literal* port of the Section 4 pseudocode onto the AP runtime:
// one ap::Process action per pseudocode action, the paper's variable names,
// and — deliberately — the paper's exact update order, including the latent
// race in the sell path (avail is decremented only when the sellreply
// arrives, so concurrent user purchases can drive the pool negative; the
// production Isp in isp.cpp reserves at initiation instead).  Property tests
// run this model under randomized interleavings.
//
// Differences forced by executability (documented, semantics-preserving):
//   - `any` choices draw from a seeded Rng;
//   - potentially-infinite user behaviour ("a user wants to send") is
//     bounded by per-process budgets so runs terminate;
//   - actions whose body is `skip` in one branch hoist the branch condition
//     into the guard (identical transition system minus stuttering steps);
//   - the 10-minute timeout is the AP-equivalent condition "my outbound
//     channels are empty", which is what the delay is for.
#pragma once

#include <memory>
#include <vector>

#include "ap/scheduler.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "crypto/nonce.hpp"
#include "crypto/rsa.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"

namespace zmail::core {

class ApZmailWorld;

// process isp[i : 0..n-1]
class ApIspProcess : public ap::Process {
 public:
  ApIspProcess(ApZmailWorld& world, std::size_t index, std::uint64_t seed);

  // --- Paper variables (public: this class is a specification model and
  // --- tests read its state directly) -----------------------------------
  EPenny avail = 0;
  std::vector<std::int64_t> account;  // real pennies per user
  std::vector<EPenny> balance;
  std::vector<std::int64_t> sent;
  std::vector<std::int64_t> limit;
  std::vector<EPenny> credit;
  bool cansend = true, canbuy = true, cansell = true;
  EPenny buyvalue = 0, sellvalue = 0;
  std::uint64_t seq = 0;
  bool quiescing = false;

  // Execution budgets (stand-ins for unbounded "user wants to..." inputs).
  std::int64_t send_budget = 0;
  std::int64_t user_trade_budget = 0;
  bool day_pending = false;  // set by tests to fire the daily reset

  // Misbehavior switch for the detection property test.
  bool cheat_free_ride = false;

  // Ablation switch: disable the resume-send barrier (see the constructor
  // comment) to reproduce the spurious-violation hazard an early resumer
  // causes under adversarial scheduling.
  bool use_resume_barrier = true;

  // Observation counters.
  std::uint64_t emails_delivered = 0;   // local + remote deliveries
  std::uint64_t emails_received = 0;    // consumed from a channel
  std::uint64_t emails_sent_out = 0;    // pushed into a channel
  std::uint64_t bad_nonce_replies = 0;
  std::uint64_t buy_retries = 0;        // buy-retry timeout firings
  std::uint64_t sell_retries = 0;       // sell-retry timeout firings

  std::size_t index() const noexcept { return index_; }

 private:
  void act_send();
  void act_rcv_email(const ap::Message& m);
  void act_daily_reset();
  void act_buy();
  void act_rcv_buyreply(const ap::Message& m);
  void act_sell();
  void act_rcv_sellreply(const ap::Message& m);
  void act_rcv_request(const ap::Message& m);
  void act_timeout_expired();

  ApZmailWorld& world_;
  std::size_t index_;
  Rng rng_;
  crypto::NonceGenerator nnc_;
  std::optional<crypto::Nonce> ns1_, ns2_;
  // Sealed wires of the outstanding exchanges, kept so a retry after a lost
  // reply resends byte-identical requests (same nonce: idempotent at the
  // bank).
  crypto::Bytes buy_wire_, sell_wire_;
};

// process bank
class ApBankProcess : public ap::Process {
 public:
  ApBankProcess(ApZmailWorld& world, std::uint64_t seed);

  std::vector<std::int64_t> account;  // real pennies per ISP
  std::vector<std::vector<EPenny>> verify;
  std::uint64_t seq = 0;
  std::size_t total = 0;
  bool canrequest = true;

  // Budgeted snapshot rounds.
  std::int64_t snapshot_budget = 0;

  // Violations recorded by completed verification rounds.
  struct Violation {
    std::size_t i, j;
    EPenny discrepancy;
  };
  std::vector<Violation> violations;
  std::uint64_t rounds_completed = 0;

  // Duplicate (retried) trade wires absorbed by the nonce cache instead of
  // being re-applied.
  std::uint64_t duplicate_buys = 0;
  std::uint64_t duplicate_sells = 0;

 private:
  void act_request();
  void act_rcv_buy(const ap::Message& m);
  void act_rcv_sell(const ap::Message& m);
  void act_rcv_reply(const ap::Message& m);
  void act_verify();

  ApZmailWorld& world_;
  Rng rng_;
  // Per-ISP cache of the last applied trade nonce and the sealed reply, so
  // a duplicated request replays the reply instead of minting/burning twice
  // (only one exchange per ISP can be outstanding: canbuy/cansell gate it).
  std::vector<std::optional<crypto::Nonce>> last_buy_nonce_, last_sell_nonce_;
  std::vector<crypto::Bytes> last_buy_reply_, last_sell_reply_;
};

// Builds the scheduler, the n ISP processes and the bank, and wires ids.
class ApZmailWorld {
 public:
  ApZmailWorld(const ZmailParams& params, ap::Scheduler::Policy policy,
               std::uint64_t seed);

  ap::Scheduler& scheduler() noexcept { return sched_; }
  const ZmailParams& params() const noexcept { return params_; }
  ApIspProcess& isp(std::size_t i) { return *isps_.at(i); }
  const ApIspProcess& isp(std::size_t i) const { return *isps_.at(i); }
  ApBankProcess& bank() noexcept { return *bank_; }
  const ApBankProcess& bank() const noexcept { return *bank_; }

  ap::ProcessId isp_pid(std::size_t i) const { return isp_pids_.at(i); }
  ap::ProcessId bank_pid() const noexcept { return bank_pid_; }
  std::size_t isp_of_pid(ap::ProcessId pid) const;

  const crypto::KeyPair& bank_keys() const noexcept { return keys_; }

  // Σ user balances + Σ avail pools + e-pennies inside in-flight email
  // between compliant ISPs.  Constant across any interleaving without
  // bank trade; bank trade shifts it by (minted - burned).
  EPenny total_epennies() const;
  EPenny epennies_minted() const noexcept { return minted_; }
  EPenny epennies_burned() const noexcept { return burned_; }
  void note_minted(EPenny n) noexcept { minted_ += n; }
  void note_burned(EPenny n) noexcept { burned_ += n; }

  // Convenience: run until quiescent (bounded).
  std::uint64_t run(std::uint64_t max_steps = 2'000'000) {
    return sched_.run(max_steps);
  }

 private:
  ZmailParams params_;
  crypto::KeyPair keys_;
  ap::Scheduler sched_;
  std::vector<std::unique_ptr<ApIspProcess>> isps_;
  std::unique_ptr<ApBankProcess> bank_;
  std::vector<ap::ProcessId> isp_pids_;
  ap::ProcessId bank_pid_ = ap::kNoProcess;
  EPenny minted_ = 0;
  EPenny burned_ = 0;
};

}  // namespace zmail::core
