// E1 — Spammer economics (paper Section 1.2, claim 1).
//
// Claim: "The cost of sending spam will increase by at least two orders of
// magnitude ... The response rate required to break even will increase
// similarly."
//
// Regenerates:
//   E1.a  campaign P&L across regimes and response rates (analytical)
//   E1.b  break-even response rate per regime and the zmail/smtp ratio
//   E1.c  profitable-campaign frontier under partial deployment
//   E1.d  a simulated blast: spam volume actually delivered per dollar of
//         spammer budget, SMTP-world vs Zmail-world
#include "bench_common.hpp"
#include "core/system.hpp"
#include "econ/spammer.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

void e1a_campaign_pnl() {
  econ::Campaign base;
  base.messages = 1'000'000;
  base.revenue_per_response = Money::from_dollars(25);

  Table t({"response rate", "smtp profit", "zmail profit",
           "zmail(50% deployed) profit"});
  bool crossover_seen = false;
  double zmail_profit_at_1e5 = 0, smtp_profit_at_1e5 = 0;
  for (double rr : {1e-6, 1e-5, 1e-4, 4e-4, 1e-3, 1e-2}) {
    econ::Campaign c = base;
    c.response_rate = rr;
    const double smtp = econ::evaluate(c, econ::smtp_regime()).profit.dollars();
    const double zm = econ::evaluate(c, econ::zmail_regime()).profit.dollars();
    const double zm50 =
        econ::evaluate(c, econ::zmail_partial_regime(0.5)).profit.dollars();
    t.add_row({Table::sci(rr, 0), Table::num(smtp, 0), Table::num(zm, 0),
               Table::num(zm50, 0)});
    if (rr == 1e-5) {
      smtp_profit_at_1e5 = smtp;
      zmail_profit_at_1e5 = zm;
    }
    if (smtp > 0 && zm < 0) crossover_seen = true;
  }
  t.print("E1.a  1M-message campaign profit vs response rate ($25/sale)");

  bench::check(smtp_profit_at_1e5 > 0 && zmail_profit_at_1e5 < 0,
               "typical 1e-5 campaign: profitable on SMTP, loss under Zmail");
  bench::check(crossover_seen,
               "profitability crossover exists between the regimes");
}

void e1b_break_even() {
  econ::Campaign c;
  c.messages = 1'000'000;
  c.revenue_per_response = Money::from_dollars(25);
  c.fixed_costs = Money::zero();

  Table t({"regime", "cost/message", "break-even response rate"});
  for (const auto& regime : {econ::smtp_regime(), econ::zmail_regime()}) {
    t.add_row({regime.name, regime.cost_per_message.str(),
               Table::sci(econ::break_even_response_rate(c, regime))});
  }
  t.print("E1.b  break-even response rates");

  const double ratio = econ::break_even_ratio(c);
  std::printf("break-even ratio (zmail/smtp): %.0fx\n", ratio);
  bench::check(ratio >= 100.0,
               "break-even response rate rises >= 2 orders of magnitude");
  const double cost_ratio = econ::zmail_regime().cost_per_message.dollars() /
                            econ::smtp_regime().cost_per_message.dollars();
  bench::check(cost_ratio >= 100.0,
               "per-message cost rises >= 2 orders of magnitude");
}

void e1c_partial_deployment_frontier() {
  econ::Campaign c;
  c.messages = 1'000'000;
  c.response_rate = 1e-5;
  c.revenue_per_response = Money::from_dollars(25);

  Table t({"compliant share", "cost/message", "campaign profit"});
  double first_unprofitable = -1.0;
  for (double share : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const auto regime = econ::zmail_partial_regime(share);
    const auto out = econ::evaluate(c, regime);
    t.add_row({Table::pct(share, 0), regime.cost_per_message.str(),
               Table::num(out.profit.dollars(), 0)});
    if (out.profit.dollars() < 0 && first_unprofitable < 0)
      first_unprofitable = share;
  }
  t.print("E1.c  spam profitability vs Zmail deployment share");
  bench::check(first_unprofitable >= 0.0 && first_unprofitable <= 0.25,
               "spam turns unprofitable early in the deployment curve");
}

void e1d_simulated_blast(bench::Bench& harness) {
  // A spammer with a $5 budget (500 e-pennies) blasts a compliant world vs
  // a fully non-compliant world.  Runs as a two-point sweep so --replicas
  // averages over independent campaigns and --threads runs them in
  // parallel.
  const std::vector<sweep::Point> grid = {
      {"all-Zmail", {{"compliant", 1}}},
      {"all-SMTP", {{"compliant", 0}}},
  };
  const auto result = harness.run_sweep(
      "e1d_simulated_blast", grid,
      [&](const sweep::Point& pt, std::uint64_t seed, std::size_t) {
        core::ZmailParams p;
        p.n_isps = 4;
        p.users_per_isp = 100;
        p.initial_user_balance = 500;
        p.default_daily_limit = 100'000;
        p.record_inboxes = false;
        if (pt.param("compliant") == 0)
          p.compliant = {false, false, false, false};
        core::ZmailSystem sys(p, seed);
        Rng seeder(seed ^ 0xB1A57ULL);
        workload::CorpusGenerator corpus(workload::CorpusParams{},
                                         seeder.split());
        workload::SpamCampaignParams cp;
        cp.messages = 5'000;
        Rng rng = seeder.split();
        const auto r = workload::run_spam_campaign(sys, cp, corpus, rng);
        sys.run_for(sim::kHour);
        sweep::MetricBag bag;
        bag.count("attempted", static_cast<double>(r.attempted));
        bag.count("sent", static_cast<double>(r.sent));
        bag.count("refused_balance", static_cast<double>(r.refused_balance));
        bag.count("events",
                  static_cast<double>(sys.simulator().events_executed()));
        return bag;
      });

  const sweep::MetricBag& smtp = result.at_label("all-SMTP").merged;
  const sweep::MetricBag& zmail = result.at_label("all-Zmail").merged;
  Table t({"world", "attempted", "delivered/accepted", "refused (no funds)"});
  t.add_row({"all-SMTP", Table::num(smtp.counter("attempted"), 0),
             Table::num(smtp.counter("sent"), 0),
             Table::num(smtp.counter("refused_balance"), 0)});
  t.add_row({"all-Zmail", Table::num(zmail.counter("attempted"), 0),
             Table::num(zmail.counter("sent"), 0),
             Table::num(zmail.counter("refused_balance"), 0)});
  t.print("E1.d  simulated blast, 500 e-pennies of budget (" +
          std::to_string(result.replicas) + " replica(s)/world)");

  bench::check(smtp.counter("sent") == smtp.counter("attempted"),
               "SMTP world delivers the whole blast for free");
  bench::check(zmail.counter("sent") < smtp.counter("sent") / 5,
               "Zmail world stops the blast when the budget runs dry");
}

void e1e_price_sensitivity() {
  // What should an e-penny cost?  The paper picks $0.01 "for simplicity";
  // this sweep shows the deterrence frontier.  A normal user's float cost
  // is ~price x monthly volume (returned on receipt), so the table also
  // shows the buffer a 240-message/month user must park.
  econ::Campaign c;
  c.messages = 1'000'000;
  c.response_rate = 1e-5;
  c.revenue_per_response = Money::from_dollars(25);

  Table t({"e-penny price", "campaign profit", "break-even response",
           "user monthly float (240 msgs)"});
  double profit_at_tenth_cent = 0, profit_at_cent = 0;
  for (const Money price :
       {Money::from_micros(100), Money::from_micros(1'000),
        Money::from_cents(1), Money::from_cents(10)}) {
    const auto regime = econ::zmail_priced_regime(price);
    const auto out = econ::evaluate(c, regime);
    t.add_row({price.str(), Table::num(out.profit.dollars(), 0),
               Table::sci(econ::break_even_response_rate(c, regime)),
               (price * std::int64_t{240}).str()});
    if (price == Money::from_micros(1'000))
      profit_at_tenth_cent = out.profit.dollars();
    if (price == Money::from_cents(1)) profit_at_cent = out.profit.dollars();
  }
  t.print("E1.e  e-penny price sensitivity");

  bench::check(profit_at_tenth_cent < 0,
               "even a tenth of a cent already sinks the bulk campaign");
  bench::check(profit_at_cent < profit_at_tenth_cent,
               "the paper's $0.01 adds a wide safety margin");
}

void e1f_market_equilibrium() {
  // "Market forces will control the volume of spam": with campaign
  // response rates lognormal across the industry, the surviving spam share
  // is the profitability tail at each stamp price.
  econ::CampaignPopulation pop;
  Table t({"stamp price", "surviving spam share"});
  for (const Money price :
       {Money::zero(), Money::from_micros(100), Money::from_micros(1'000),
        Money::from_cents(1), Money::from_cents(10)}) {
    t.add_row({price.str(),
               Table::pct(econ::surviving_spam_share(pop, price), 2)});
  }
  t.print("E1.f  equilibrium spam volume vs stamp price");

  const Money p95 = econ::price_for_spam_reduction(pop, 0.05);
  std::printf("price for a 95%% spam reduction: %s\n", p95.str().c_str());
  bench::check(econ::surviving_spam_share(pop, Money::from_cents(1)) < 0.05,
               "the paper's $0.01 kills >95% of spam volume at equilibrium");
  bench::check(p95 <= Money::from_cents(1),
               "$0.01 is at or above the 95%-reduction price point");
  bench::check(econ::surviving_spam_share(pop, Money::from_cents(1)) > 0.0,
               "well-targeted advertising survives, as intended");
}

void e1g_telemetry_overlay(bench::Bench& harness) {
  // --telemetry: replay the E1.d compliant-world blast with the telemetry
  // registry attached and embed the market + mail-flow series in the bench
  // JSON, so the campaign's economic footprint (stamp price, delivery and
  // refusal rates, e-penny supply) can be plotted straight from
  // BENCH_e1_spammer_economics.json.  Off by default: the extra section
  // would break byte-for-byte JSON comparisons between runs.
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 100;
  p.initial_user_balance = 500;
  p.default_daily_limit = 100'000;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, harness.options().seed);
  telemetry::TelemetryConfig tc;
  tc.enabled = true;
  tc.sample_period = sim::kMinute;
  sys.enable_telemetry(tc);

  Rng seeder(harness.options().seed ^ 0xB1A57ULL);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, seeder.split());
  workload::SpamCampaignParams cp;
  cp.messages = 5'000;
  Rng rng = seeder.split();
  (void)workload::run_spam_campaign(sys, cp, corpus, rng);
  sys.run_for(sim::kHour);

  telemetry::DeriveSpec spec;
  spec.endowment_epennies =
      static_cast<double>(sys.initial_endowment_owned());
  std::vector<telemetry::Series> merged =
      telemetry::merge_series({sys.telemetry()}, spec);
  // Keep the economics-relevant slice: every econ series plus the world
  // mail-flow totals.
  std::vector<telemetry::Series> overlay;
  for (auto& s : merged) {
    const bool flow_total = s.scope == "core" && s.name.rfind("total.", 0) == 0;
    if (!s.engine && (s.scope == "econ" || flow_total))
      overlay.push_back(std::move(s));
  }
  json::Value j = json::Value::object();
  j["sample_period_us"] = static_cast<std::uint64_t>(sim::kMinute);
  j["series"] = telemetry::timeseries_json(overlay, /*engine=*/false);
  harness.section("telemetry") = std::move(j);
  std::printf("telemetry overlay: %zu series embedded in JSON\n",
              overlay.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e1_spammer_economics", argc, argv);
  std::printf("=== E1: spammer economics ===\n");
  e1a_campaign_pnl();
  e1b_break_even();
  e1c_partial_deployment_frontier();
  e1d_simulated_blast(harness);
  e1e_price_sensitivity();
  e1f_market_equilibrium();
  if (harness.options().telemetry) e1g_telemetry_overlay(harness);
  return harness.finish();
}
