#include "util/log.hpp"

#include <gtest/gtest.h>

namespace zmail {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, DefaultThresholdIsWarn) {
  // (Guarded: other tests may have changed it; we only check the enum
  // ordering assumption the macro relies on.)
  EXPECT_LT(static_cast<int>(LogLevel::kTrace),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kOff));
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  logf(LogLevel::kError, "test", "dropped %d", 42);
  ZMAIL_LOG(LogLevel::kError, "test", "also dropped %s", "x");
}

TEST(Log, EmittedMessagesDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kTrace);
  logf(LogLevel::kWarn, "test", "emitted %d %s", 1, "ok");
}

}  // namespace
}  // namespace zmail
