# Empty dependencies file for crypto_hashcash_test.
# This may be replaced when dependencies are built.
