// End-to-end causal tracing through the full system: a message's span
// chain must survive ARQ retransmits and refunds, ISP crash/recovery must
// not re-mint spans (WAL replay is suppressed), the snapshot round and
// checkpoint machinery must produce closed host-scoped spans, and the
// whole stream must pass the exporters and the CI span invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/obs.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace zmail::core {
namespace {

class TraceIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::clear();
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

ZmailParams small_params() {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.initial_user_balance = 50;
  p.default_daily_limit = 100;
  p.initial_avail = 100;
  p.minavail = 10;
  p.maxavail = 400;
  p.record_inboxes = false;
  return p;
}

const trace::Chain* chain_of(const std::map<trace::TraceId, trace::Chain>& m,
                             trace::Ev terminal) {
  for (const auto& [id, c] : m)
    if (c.terminal == terminal) return &c;
  return nullptr;
}

TEST_F(TraceIntegrationTest, DeliveredMessageHasFullCausalChain) {
  ZmailSystem sys(small_params(), 7);
  ASSERT_EQ(sys.send_email(net::make_user_address(0, 0),
                           net::make_user_address(1, 0), "hi", "body"),
            SendResult::kSentPaid);
  sys.run_for(sim::kMinute);

  const auto events = trace::collect();
  const auto chains = trace::build_chains(events);
  const trace::Chain* c = chain_of(chains, trace::Ev::kDeliver);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->has_root);
  EXPECT_TRUE(c->root_closed);

  // The chain walks submit -> network -> SMTP -> classify -> deliver.
  bool saw_submit = false, saw_net = false, saw_smtp = false,
       saw_classify = false;
  for (const auto& ev : c->events) {
    const auto t = static_cast<trace::Ev>(ev.type);
    if (t == trace::Ev::kSubmit) saw_submit = true;
    if (t == trace::Ev::kNetSend || t == trace::Ev::kNetDeliver) saw_net = true;
    if (t == trace::Ev::kSmtp) saw_smtp = true;
    if (t == trace::Ev::kClassify) saw_classify = true;
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_net);
  EXPECT_TRUE(saw_smtp);
  EXPECT_TRUE(saw_classify);

  const trace::ValidationResult v = trace::validate(events);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
}

TEST_F(TraceIntegrationTest, ArqRetransmitAndRefundChain) {
  ZmailParams p = small_params();
  p.reliable_email_transport = true;
  p.email_max_retransmits = 2;  // abandon quickly -> refund path
  ZmailSystem sys(p, 11);

  // Total loss: every datagram is dropped, so the transfer retransmits to
  // its cap, abandons, and refunds the payer.
  net::FaultPlan plan;
  plan.rates.drop = 1.0;
  net::FaultInjector faults(plan, 99);
  sys.attach_faults(&faults);

  ASSERT_EQ(sys.send_email(net::make_user_address(0, 0),
                           net::make_user_address(1, 0), "doomed", "body"),
            SendResult::kSentPaid);
  sys.run_for(sim::kHour);
  ASSERT_EQ(sys.pending_transfers(), 0u);

  const auto events = trace::collect();
  const auto chains = trace::build_chains(events);
  const trace::Chain* c = chain_of(chains, trace::Ev::kRefund);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->has_root);
  EXPECT_TRUE(c->root_closed);
  // Initial transmission plus at least one retransmit before abandoning.
  EXPECT_GE(c->transmits, 2u);

  // The kTransit span closed with the abandoned flag.
  bool transit_abandoned = false;
  for (const auto& s : trace::build_spans(events))
    if (s.type == trace::Ev::kTransit && s.closed && s.end_arg0 == 1)
      transit_abandoned = true;
  EXPECT_TRUE(transit_abandoned);

  const trace::ValidationResult v = trace::validate(events);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
}

TEST_F(TraceIntegrationTest, CrashRecoveryDoesNotRemintSpans) {
  const std::string dir = "trace_itest_store";
  std::filesystem::remove_all(dir);
  ZmailParams p = small_params();
  p.store.enabled = true;
  p.store.dir = dir;
  ZmailSystem sys(p, 13);
  sys.enable_bank_trading();

  for (int i = 0; i < 6; ++i) {
    sys.send_email(net::make_user_address(i % 2, 0),
                   net::make_user_address((i + 1) % 2, 0), "t",
                   "b" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
  sys.checkpoint_host(0);
  sys.crash_host(0, 5 * sim::kMinute);
  sys.run_for(sim::kHour);
  EXPECT_EQ(sys.state_recoveries(), 1u);

  // More traced traffic after the rebuild keeps working.
  sys.send_email(net::make_user_address(0, 1), net::make_user_address(1, 1),
                 "after", "recovery");
  sys.run_for(sim::kHour);

  const auto events = trace::collect();
  // Exactly one kMessage begin per id, even though ISP 0's WAL replayed
  // commands that had emitted spans pre-crash (the ReplayGuard suppresses
  // them), and the recovery itself shows up as a closed span.
  const trace::ValidationResult v = trace::validate(events);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
  bool recovery_span_closed = false;
  for (const auto& s : trace::build_spans(events))
    if (s.type == trace::Ev::kRecovery && s.closed) recovery_span_closed = true;
  EXPECT_TRUE(recovery_span_closed);

  std::filesystem::remove_all(dir);
}

TEST_F(TraceIntegrationTest, SnapshotRoundAndBankExchangeSpans) {
  ZmailParams p = small_params();
  p.initial_avail = 100;
  p.minavail = 50;
  p.maxavail = 400;
  ZmailSystem sys(p, 17);
  sys.enable_bank_trading();
  sys.buy_epennies(net::make_user_address(0, 0), 60);  // avail 40 < 50
  sys.run_for(sim::kHour);  // trading poll fires -> bank buy round-trips
  for (int i = 0; i < 4; ++i) {
    sys.send_email(net::make_user_address(0, i % 2),
                   net::make_user_address(1, i % 2), "s", "m");
    sys.run_for(10 * sim::kMinute);
  }
  sys.start_snapshot();
  sys.run_for(sim::kHour);

  bool settle_span = false, buy_span = false;
  for (const auto& s : trace::build_spans(trace::collect())) {
    if (s.type == trace::Ev::kSnapshotRound && s.closed) settle_span = true;
    if (s.type == trace::Ev::kBankBuy && s.closed) buy_span = true;
  }
  EXPECT_TRUE(settle_span);
  EXPECT_TRUE(buy_span);

  const auto stages = trace::breakdown(trace::collect());
  EXPECT_EQ(stages.count("settle"), 1u);
  EXPECT_EQ(stages.count("stamp_buy"), 1u);
}

TEST_F(TraceIntegrationTest, ExportedRunReparsesAndValidates) {
  ZmailSystem sys(small_params(), 23);
  for (int i = 0; i < 4; ++i) {
    sys.send_email(net::make_user_address(0, 0), net::make_user_address(1, 0),
                   "x", "y");
    sys.run_for(sim::kMinute);
  }
  const auto events = trace::collect();
  ASSERT_FALSE(events.empty());

  for (const char* name : {"titest.trace", "titest.json"}) {
    const std::string path = ::testing::TempDir() + name;
    std::string err;
    ASSERT_TRUE(trace::export_auto(path, events, trace::collect_logs(), &err))
        << err;
    std::vector<trace::TraceEvent> loaded;
    std::vector<trace::LogRecord> logs;
    ASSERT_TRUE(trace::load(path, &loaded, &logs, &err)) << err;
    std::remove(path.c_str());
    ASSERT_EQ(loaded.size(), events.size());
    const trace::ValidationResult v = trace::validate(loaded);
    EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
  }
}

TEST_F(TraceIntegrationTest, ObsV2FoldsCountersAndBreakdown) {
  ZmailSystem sys(small_params(), 29);
  sys.send_email(net::make_user_address(0, 0), net::make_user_address(1, 0),
                 "v2", "b");
  sys.run_for(sim::kHour);

  // v1 must not know the v2 keys (byte-stable legacy schema) ...
  const json::Value v1 = obs::snapshot(sys, obs::Schema::kV1);
  EXPECT_EQ(v1.find("isp_totals")->find("emails_retransmitted"), nullptr);
  EXPECT_EQ(v1.find("store"), nullptr);
  EXPECT_EQ(v1.find("trace_breakdown"), nullptr);

  // ... while v2 carries the fault counters, bank idempotency counters,
  // store totals, and the live trace breakdown.
  const json::Value v2 = obs::snapshot(sys, obs::Schema::kV2);
  ASSERT_NE(v2.find("isp_totals"), nullptr);
  EXPECT_NE(v2.find("isp_totals")->find("emails_retransmitted"), nullptr);
  ASSERT_NE(v2.find("bank"), nullptr);
  EXPECT_NE(v2.find("bank")->find("duplicate_buys"), nullptr);
  ASSERT_NE(v2.find("store"), nullptr);
  EXPECT_NE(v2.find("store")->find("state_recoveries"), nullptr);
  ASSERT_NE(v2.find("trace_breakdown"), nullptr);
  EXPECT_NE(v2.find("trace_breakdown")->find("message"), nullptr);

  obs::MetricsRegistry reg;
  reg.add_system("sys", sys);
  json::Value snap1 = reg.snapshot();
  EXPECT_EQ(snap1.find("schema")->as_string(), "zmail-obs-v1");
  reg.set_schema(obs::Schema::kV2);
  json::Value snap2 = reg.snapshot();
  EXPECT_EQ(snap2.find("schema")->as_string(), "zmail-obs-v2");
}

}  // namespace
}  // namespace zmail::core
