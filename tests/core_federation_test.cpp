#include "core/federation.hpp"

#include <gtest/gtest.h>

#include "core/isp.hpp"

namespace zmail::core {
namespace {

ZmailParams fed_params(std::size_t n = 6) {
  ZmailParams p;
  p.n_isps = n;
  p.users_per_isp = 2;
  return p;
}

class FederationTest : public ::testing::Test {
 protected:
  // Drives a full snapshot round through real Isp state machines that seal
  // to their home banks' keys.
  void run_round(BankFederation& fed, std::vector<Isp>& isps) {
    for (auto& [idx, wire] : fed.start_snapshot()) {
      isps[idx].on_request(wire);
      isps[idx].on_quiesce_timeout();
      for (const Outbound& o : isps[idx].take_outbox())
        if (o.type == kMsgReply) fed.on_reply(idx, o.payload);
    }
  }

  ZmailParams params_ = fed_params();
};

TEST_F(FederationTest, HomeBankAssignmentIsRoundRobin) {
  BankFederation fed(params_, 3, 1);
  EXPECT_EQ(fed.home_bank(0), 0u);
  EXPECT_EQ(fed.home_bank(1), 1u);
  EXPECT_EQ(fed.home_bank(2), 2u);
  EXPECT_EQ(fed.home_bank(3), 0u);
  EXPECT_EQ(fed.bank_count(), 3u);
}

TEST_F(FederationTest, SingleBankDegeneratesToCentralBank) {
  BankFederation fed(params_, 1, 2);
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    EXPECT_EQ(fed.home_bank(i), 0u);
  EXPECT_EQ(fed.metrics().interbank_messages, 0u);
}

TEST_F(FederationTest, BanksHaveDistinctKeys) {
  BankFederation fed(params_, 3, 3);
  EXPECT_NE(fed.bank_keys(0).pub.n, fed.bank_keys(1).pub.n);
  EXPECT_NE(fed.bank_keys(1).pub.n, fed.bank_keys(2).pub.n);
  EXPECT_EQ(fed.public_key_for(4).n, fed.bank_keys(1).pub.n);  // 4 % 3 == 1
}

TEST_F(FederationTest, BuySellRoutedToHomeBank) {
  BankFederation fed(params_, 2, 4);
  ZmailParams p2 = params_;
  p2.minavail = 50;
  p2.maxavail = 200;
  Isp isp2(3, p2, fed.public_key_for(3), 7);  // home bank 1
  isp2.set_avail(10);
  isp2.maybe_trade_with_bank();
  crypto::Bytes reply;
  for (const Outbound& o : isp2.take_outbox())
    reply = fed.on_buy(3, o.payload);
  ASSERT_FALSE(reply.empty());
  isp2.on_buyreply(reply);
  EXPECT_EQ(isp2.avail(), 200);
  EXPECT_EQ(fed.isp_account(3), params_.initial_isp_bank_account -
                                    Money::from_epennies(190));
  EXPECT_EQ(fed.metrics().epennies_minted, 190);
}

TEST_F(FederationTest, BuySealedToWrongBankRejected) {
  BankFederation fed(params_, 2, 5);
  ZmailParams p2 = params_;
  p2.minavail = 50;
  // ISP 3's home bank is 1, but it seals to bank 0's key.
  Isp wrong(3, p2, fed.bank_keys(0).pub, 8);
  wrong.set_avail(10);
  wrong.maybe_trade_with_bank();
  for (const Outbound& o : wrong.take_outbox())
    EXPECT_TRUE(fed.on_buy(3, o.payload).empty());
}

TEST_F(FederationTest, CleanRoundAcrossBanks) {
  BankFederation fed(params_, 3, 6);
  std::vector<Isp> isps;
  isps.reserve(params_.n_isps);
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    isps.emplace_back(i, params_, fed.public_key_for(i), 100 + i);

  // Cross-bank mail: 0 (bank0) -> 1 (bank1) x3; 1 -> 5 (bank2) x2.
  for (int k = 0; k < 3; ++k)
    isps[0].user_send(0, 1, 0, net::make_email(net::make_user_address(0, 0),
                                               net::make_user_address(1, 0),
                                               "s", "b"));
  for (const Outbound& o : isps[0].take_outbox())
    isps[1].on_email(0, o.payload);
  for (int k = 0; k < 2; ++k)
    isps[1].user_send(0, 5, 0, net::make_email(net::make_user_address(1, 0),
                                               net::make_user_address(5, 0),
                                               "s", "b"));
  for (const Outbound& o : isps[1].take_outbox())
    isps[5].on_email(1, o.payload);

  run_round(fed, isps);
  EXPECT_FALSE(fed.round_open());
  EXPECT_TRUE(fed.last_violations().empty());
  EXPECT_EQ(fed.metrics().rounds_completed, 1u);
  EXPECT_EQ(fed.seq(), 1u);

  // Settlement: 0 paid 1 three e-pennies; 1 paid 5 two.
  EXPECT_EQ(fed.isp_account(0),
            params_.initial_isp_bank_account - Money::from_epennies(3));
  EXPECT_EQ(fed.isp_account(1),
            params_.initial_isp_bank_account + Money::from_epennies(1));
  EXPECT_EQ(fed.isp_account(5),
            params_.initial_isp_bank_account + Money::from_epennies(2));
  EXPECT_EQ(fed.metrics().settlements_cross_bank, 2u);
  EXPECT_EQ(fed.metrics().settlements_intra_bank, 0u);
}

TEST_F(FederationTest, ClearingPositionsNetToZero) {
  BankFederation fed(params_, 3, 7);
  std::vector<Isp> isps;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    isps.emplace_back(i, params_, fed.public_key_for(i), 200 + i);
  // A messy flow pattern.
  auto mail_between = [&](std::size_t a, std::size_t b, int k) {
    for (int m = 0; m < k; ++m) {
      isps[a].user_send(0, b, 0,
                        net::make_email(net::make_user_address(a, 0),
                                        net::make_user_address(b, 0), "s",
                                        "b"));
    }
    for (const Outbound& o : isps[a].take_outbox())
      isps[b].on_email(a, o.payload);
  };
  mail_between(0, 4, 5);
  mail_between(4, 2, 3);
  mail_between(2, 0, 1);
  mail_between(1, 3, 7);

  run_round(fed, isps);
  EXPECT_TRUE(fed.last_violations().empty());
  Money net = Money::zero();
  for (std::size_t b = 0; b < 3; ++b) net += fed.clearing_position(b);
  EXPECT_TRUE(net.is_zero());
  EXPECT_GT(fed.metrics().clearing_transfers, 0u);
}

TEST_F(FederationTest, CrossBankCheatDetected) {
  BankFederation fed(params_, 2, 8);
  std::vector<Isp> isps;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    isps.emplace_back(i, params_, fed.public_key_for(i), 300 + i);
  isps[0].set_misbehavior(Isp::Misbehavior::kFreeRide);
  // 0 (bank 0) free-rides mail to 1 (bank 1).
  for (int k = 0; k < 4; ++k)
    isps[0].user_send(0, 1, 0, net::make_email(net::make_user_address(0, 0),
                                               net::make_user_address(1, 0),
                                               "s", "b"));
  for (const Outbound& o : isps[0].take_outbox())
    isps[1].on_email(0, o.payload);

  run_round(fed, isps);
  ASSERT_EQ(fed.last_violations().size(), 1u);
  EXPECT_EQ(fed.last_violations()[0].isp_i, 0u);
  EXPECT_EQ(fed.last_violations()[0].isp_j, 1u);
  EXPECT_EQ(fed.last_violations()[0].discrepancy, -4);
  // The disputed pair is not settled.
  EXPECT_EQ(fed.isp_account(1), params_.initial_isp_bank_account);
}

TEST_F(FederationTest, InterbankTrafficScalesWithBanks) {
  std::uint64_t msgs2 = 0, msgs4 = 0;
  for (std::size_t n_banks : {2u, 4u}) {
    ZmailParams p = fed_params(8);
    BankFederation fed(p, n_banks, 9);
    std::vector<Isp> isps;
    for (std::size_t i = 0; i < p.n_isps; ++i)
      isps.emplace_back(i, p, fed.public_key_for(i), 400 + i);
    std::vector<Isp>& ref = isps;
    for (auto& [idx, wire] : fed.start_snapshot()) {
      ref[idx].on_request(wire);
      ref[idx].on_quiesce_timeout();
      for (const Outbound& o : ref[idx].take_outbox())
        if (o.type == kMsgReply) fed.on_reply(idx, o.payload);
    }
    if (n_banks == 2) msgs2 = fed.metrics().interbank_messages;
    if (n_banks == 4) msgs4 = fed.metrics().interbank_messages;
  }
  EXPECT_EQ(msgs2, 2u);   // 2 * 1
  EXPECT_EQ(msgs4, 12u);  // 4 * 3
}

TEST_F(FederationTest, PartialComplianceSkipsLegacyIsps) {
  ZmailParams p = fed_params(6);
  p.compliant = {true, true, false, true, false, true};
  BankFederation fed(p, 2, 11);
  std::vector<Isp> isps;
  for (std::size_t i = 0; i < p.n_isps; ++i)
    isps.emplace_back(i, p, fed.public_key_for(i), 600 + i);
  const auto requests = fed.start_snapshot();
  EXPECT_EQ(requests.size(), 4u);  // only the compliant four
  for (auto& [idx, wire] : requests) {
    isps[idx].on_request(wire);
    isps[idx].on_quiesce_timeout();
    for (const Outbound& o : isps[idx].take_outbox())
      if (o.type == kMsgReply) fed.on_reply(idx, o.payload);
  }
  EXPECT_FALSE(fed.round_open());
  EXPECT_TRUE(fed.last_violations().empty());
}

TEST_F(FederationTest, GarbageWireIgnoredEverywhere) {
  BankFederation fed(params_, 2, 12);
  EXPECT_TRUE(fed.on_buy(0, {1, 2, 3}).empty());
  EXPECT_TRUE(fed.on_sell(1, {}).empty());
  fed.start_snapshot();
  fed.on_reply(0, {0xFF, 0xEE});
  EXPECT_TRUE(fed.round_open());  // nothing counted
}

TEST_F(FederationTest, StaleAndDuplicateRepliesIgnored) {
  BankFederation fed(params_, 2, 10);
  std::vector<Isp> isps;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    isps.emplace_back(i, params_, fed.public_key_for(i), 500 + i);

  auto requests = fed.start_snapshot();
  // ISP 0 replies twice (duplicate); others once.
  crypto::Bytes first_report;
  for (auto& [idx, wire] : requests) {
    isps[idx].on_request(wire);
    isps[idx].on_quiesce_timeout();
    for (const Outbound& o : isps[idx].take_outbox()) {
      if (o.type != kMsgReply) continue;
      fed.on_reply(idx, o.payload);
      if (idx == 0) first_report = o.payload;
    }
  }
  EXPECT_FALSE(fed.round_open());
  const std::uint64_t reports = fed.metrics().reports_received;
  fed.on_reply(0, first_report);  // replay after the round closed
  EXPECT_EQ(fed.metrics().reports_received, reports);
  EXPECT_EQ(fed.metrics().rounds_completed, 1u);
}

}  // namespace
}  // namespace zmail::core
