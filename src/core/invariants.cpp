#include "core/invariants.hpp"

#include "util/assert.hpp"

namespace zmail::core {

namespace {
constexpr std::size_t kMaxMessages = 16;
}  // namespace

InvariantAuditor::InvariantAuditor(ZmailSystem& sys)
    : sys_(&sys),
      initial_real_money_(
          sys.total_real_money() +
          Money::from_epennies(sys.bank().epennies_outstanding())) {}

void InvariantAuditor::fail(std::string msg) {
  ++report_.violations;
  if (report_.messages.size() < kMaxMessages)
    report_.messages.push_back(std::move(msg));
}

void InvariantAuditor::check_now() {
  const ZmailSystem& sys = *sys_;
  const ZmailParams& params = sys.params();

  // 1. e-penny conservation: holdings == endowment + net mint.
  if (!sys.conservation_holds())
    fail("e-penny conservation broken: holdings != initial + minted - burned");
  if (sys.epennies_in_flight() < 0)
    fail("negative in-flight escrow");

  // 2. real money is only ever moved, never created.  A mint swaps dollars
  //    out of the measured accounts into the bank's vault (where they back
  //    the outstanding e-pennies) and a burn swaps them back, so the
  //    conserved quantity is accounts + vault, not accounts alone.
  if (!(sys.total_real_money() +
            Money::from_epennies(sys.bank().epennies_outstanding()) ==
        initial_real_money_))
    fail("real-money total (accounts + e-penny backing) drifted from its"
         " initial value");

  // 3. per-user limit safety and non-negative pools.
  for (std::size_t i = 0; i < params.n_isps; ++i) {
    if (!params.is_compliant(i)) continue;
    const Isp& isp = sys.isp(i);
    if (isp.avail() < 0) fail("negative avail pool at isp " + std::to_string(i));
    if (isp.buffered_paid() < 0)
      fail("negative buffered-paid escrow at isp " + std::to_string(i));
    isp.users().for_each_active([&](UserId u, ConstUserRef acc) {
      if (acc.balance < 0)
        fail("negative balance: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
      if (acc.sent > acc.limit)
        fail("daily limit exceeded: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
    });
  }

  // 4. nonce non-reuse: duplicates were absorbed, not re-applied.  A
  //    re-applied nonce mints or burns twice, which invariant (1) catches;
  //    here we tally how much duplication the shields ate.
  const BankMetrics& bm = sys.bank().metrics();
  report_.replays_absorbed = bm.duplicate_buys + bm.duplicate_sells +
                             bm.stale_trades + bm.stale_reports +
                             sys.total_isp_metrics().duplicate_emails_dropped;
  if (sys.bank().epennies_outstanding() < 0)
    fail("bank burned more e-pennies than it minted");

  // 5. credit consistency (unless misbehaviour was injected on purpose).
  //    Persistent drift only: a snapshot recovered after a lost request
  //    legitimately skews one pair by +/-d across two adjacent rounds, and
  //    that skew nets out; a dishonest pair keeps drifting and is counted.
  if (expect_consistent_ && sys.bank().persistent_drift_pairs() != 0)
    fail("bank saw " + std::to_string(sys.bank().persistent_drift_pairs()) +
         " ISP pair(s) in persistent credit drift without injected"
         " misbehaviour");

  ++report_.checks;
}

void InvariantAuditor::run_continuously(sim::Duration period) {
  sys_->simulator().schedule_every(period, [this] {
    check_now();
    return true;
  });
}

void InvariantAuditor::assert_ok() const {
  ZMAIL_ASSERT_MSG(report_.ok(), report_.messages.empty()
                                     ? "invariant violated"
                                     : report_.messages.front().c_str());
}

// --- FederationAuditor ------------------------------------------------------

FederationAuditor::FederationAuditor(FederatedZmailSystem& sys)
    : sys_(&sys),
      initial_real_money_(
          sys.total_real_money() +
          Money::from_epennies(sys.federation().metrics().epennies_minted -
                               sys.federation().metrics().epennies_burned)) {}

void FederationAuditor::fail(std::string msg) {
  ++report_.violations;
  if (report_.messages.size() < kMaxMessages)
    report_.messages.push_back(std::move(msg));
}

void FederationAuditor::check_now() {
  const FederatedZmailSystem& sys = *sys_;
  const BankFederation& fed = sys.federation();
  const ZmailParams& params = sys.params();
  const std::size_t k = fed.bank_count();
  const FederationMetrics total = fed.metrics();

  // 1. e-penny conservation against the federation-wide net mint.
  if (!sys.conservation_holds())
    fail("e-penny conservation broken: holdings != initial + minted - burned");
  if (total.epennies_minted < total.epennies_burned)
    fail("federation burned more e-pennies than it minted");

  // 2. real money: accounts + the vault backing the summed outstanding
  //    supply of all member banks is constant.
  if (!(sys.total_real_money() +
            Money::from_epennies(total.epennies_minted -
                                 total.epennies_burned) ==
        initial_real_money_))
    fail("real-money total (accounts + e-penny backing) drifted from its"
         " initial value");

  // 3. per-user limit safety and non-negative pools.
  for (std::size_t i = 0; i < params.n_isps; ++i) {
    const Isp& isp = sys.isp(i);
    if (isp.avail() < 0) fail("negative avail pool at isp " + std::to_string(i));
    if (isp.buffered_paid() < 0)
      fail("negative buffered-paid escrow at isp " + std::to_string(i));
    isp.users().for_each_active([&](UserId u, ConstUserRef acc) {
      if (acc.balance < 0)
        fail("negative balance: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
      if (acc.sent > acc.limit)
        fail("daily limit exceeded: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
    });
  }

  // 4. duplicate / stale deliveries were absorbed, never re-applied (a
  //    re-application would surface in 1, 2, or 5).
  report_.replays_absorbed = total.duplicate_trades + total.stale_trades +
                             total.duplicate_interbank + total.stale_interbank;

  // 5. clearing zero-sum at globally idle cuts.  Mid-round a pair is
  //    legitimately lopsided (one side combined its partials, the other
  //    still awaits a clearing wire), so these only run when every round
  //    is closed and no inter-bank wire is unacked.
  if (fed.idle()) {
    Money net_sum = Money::zero();
    for (std::size_t b = 0; b < k; ++b) net_sum += fed.clearing_position(b);
    if (!(net_sum == Money::zero()))
      fail("clearing positions do not sum to zero across the federation");
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = a + 1; b < k; ++b)
        if (!(fed.clearing_pair(a, b) + fed.clearing_pair(b, a) ==
              Money::zero()))
          fail("clearing pair (" + std::to_string(a) + "," +
               std::to_string(b) + ") is not antisymmetric");
    // 6. no round double-applies: every bank agrees on how many rounds
    //    settled, even across crash + WAL replay.
    for (std::size_t b = 1; b < k; ++b)
      if (fed.seq(b) != fed.seq(0))
        fail("bank " + std::to_string(b) + " round seq " +
             std::to_string(fed.seq(b)) + " != bank 0 seq " +
             std::to_string(fed.seq(0)));
  }

  ++report_.checks;
}

void FederationAuditor::run_continuously(sim::Duration period) {
  sys_->simulator().schedule_every(period, [this] {
    check_now();
    return true;
  });
}

void FederationAuditor::assert_ok() const {
  ZMAIL_ASSERT_MSG(report_.ok(), report_.messages.empty()
                                     ? "invariant violated"
                                     : report_.messages.front().c_str());
}

}  // namespace zmail::core
