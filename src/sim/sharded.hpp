// Conservative parallel discrete-event engine: one world, many shards.
//
// The world is partitioned into shards, each owning one `Simulator` (its own
// two-level calendar queue, clock, and event arena).  Execution proceeds in
// lookahead windows of length L = the network's minimum host-to-host latency:
// within a window every shard pumps its own queue on a `ThreadPool` worker
// with no locks and no sharing, because any message it emits cannot arrive
// before the next window starts (send at t in [w, w+L) delivers at
// >= t + L >= w + L; FIFO clamps and fault delay spikes only push later).
// Cross-shard messages ride a lock-light SPSC mailbox per (src,dst) shard
// pair and are drained at the barrier between windows.
//
// Two modes:
//   - deterministic: window starts are aligned to multiples of L and idle
//     gaps jump to floor(next_event/L)*L — a pure function of world state,
//     so the barrier schedule is identical at any shard/thread count — and
//     drained messages are merged in canonical (at, src_shard, seq) order
//     before being scheduled, pinning tie-breaks.  Combined with pair-keyed
//     latency/fault draws (util/rng.hpp pair_keyed_rng) the merged run is
//     bit-identical across shard and thread counts.
//   - free-running: windows start at the earliest pending event (no
//     alignment) and drains skip the canonical sort.  Slightly less barrier
//     overhead, no cross-run identity promise.
//
// The engine owns no world state: shards attach their Simulators, the
// network layer routes remote sends into `post()`, and an optional barrier
// hook (single-threaded, between windows) lets auditors check global
// invariants mid-run — conservation must hold at every barrier, not just at
// the end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/thread_pool.hpp"

namespace zmail::sim {

struct ShardedOptions {
  std::size_t shards = 1;
  // Conservative lookahead; must equal (or understate) the smallest
  // cross-shard delivery delay.  Derive from LatencyModel::min_latency().
  Duration lookahead = 0;
  bool deterministic = true;
};

// Engine-level counters.  These describe the *execution*, not the world, so
// they are reported separately from world stats: windows/barriers depend on
// the barrier schedule (identical across runs only in deterministic mode)
// and cross_shard_msgs depends on the partition.
struct ShardedStats {
  std::uint64_t windows = 0;
  std::uint64_t cross_shard_msgs = 0;
  std::uint64_t mailbox_overflows = 0;  // ring spills (perf signal only)
  std::uint64_t horizon_clamps = 0;     // lookahead violations (must stay 0)
  std::uint64_t events_executed = 0;
  std::uint64_t max_window_events = 0;  // busiest single (window, shard)
};

class ShardedSimulator {
 public:
  // `pool` drives the windows; it must outlive the engine.  Pass the same
  // pool the sweep uses — with one worker parallel_for degrades to the
  // inline reference path, which is the threads=1 determinism anchor.
  ShardedSimulator(ShardedOptions opts, util::ThreadPool& pool);

  // Wire shard `s` to its Simulator (not owned; one per shard, all before
  // run()).  Shards must share a common time origin (now() == 0).
  void attach(std::size_t s, Simulator* simulator);

  // Cross-shard send: run `fn` on shard `dst` at absolute time `at`.
  // Must be called from shard `src`'s window execution (that thread is the
  // mailbox's single producer).  `at` must honour the lookahead bound; the
  // drain asserts it lands at or after the next window start.
  void post(std::size_t src, std::size_t dst, SimTime at, InlineEvent fn);

  // Runs between windows on the coordinating thread, after mailboxes have
  // drained, with every shard quiescent at the barrier time — safe to read
  // any shard's state (global invariant audits hook in here).
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

  // Run the world until `until` (inclusive), like Simulator::run.  Returns
  // events executed across all shards during this call.
  std::uint64_t run(SimTime until);

  const ShardedStats& stats() const noexcept { return stats_; }
  const ShardedOptions& options() const noexcept { return opts_; }
  std::size_t shard_count() const noexcept { return sims_.size(); }

 private:
  SpscMailbox& box(std::size_t src, std::size_t dst) {
    return *boxes_[src * sims_.size() + dst];
  }
  // Drain every mailbox into its destination shard's queue; returns the
  // number of messages moved.  `window_end` is the barrier time: no message
  // may be timestamped at or before it.
  std::uint64_t drain_mailboxes(SimTime window_end);

  ShardedOptions opts_;
  util::ThreadPool& pool_;
  std::vector<Simulator*> sims_;
  // Dense (src,dst) mailbox matrix; unique_ptr keeps addresses stable and
  // avoids false sharing between adjacent mailboxes' atomics.
  std::vector<std::unique_ptr<SpscMailbox>> boxes_;
  std::function<void(SimTime)> barrier_hook_;
  std::vector<ShardMsg> drain_buf_;
  ShardedStats stats_;
};

}  // namespace zmail::sim
