// Microbenchmarks for the per-message hot path: event scheduling/dispatch,
// datagram delivery, exact-reserve serialization, and scratch-buffer
// envelopes.
//
// The event-dispatch section embeds the pre-optimization implementation —
// std::function events in a single std::priority_queue, exactly the code the
// simulator shipped with before the calendar queue / InlineEvent rewrite —
// and drives both through an identical delivery-shaped cascade, plus an
// era-faithful replica of the pre-change Network::send path.  The headline
// number (and the acceptance check, asserted in full runs only) is the
// per-message delivery speedup of the new machinery over that replica.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_micro_common.hpp"

#include "core/messages.hpp"
#include "crypto/rsa.hpp"
#include "net/msg_type.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace zmail;

namespace {

// --- The pre-change event loop, verbatim in shape -------------------------
// std::function<void()> events (heap-allocated once the capture exceeds the
// ~16-byte SBO) ordered by one global binary heap.  Kept here as the fixed
// baseline the acceptance check measures against.
class LegacySimulator {
 public:
  using EventFn = std::function<void()>;

  sim::SimTime now() const noexcept { return now_; }

  void schedule_at(sim::SimTime at, EventFn fn) {
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      Event e = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = e.at;
      e.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    sim::SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  sim::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// --- Delivery-shaped cascade ---------------------------------------------
// Each event carries a datagram-sized context (a payload buffer plus
// addressing), does a token of work, and schedules one successor 20-30ms
// out — the shape of Network delivery traffic in E3.  Payload buffers are
// allocated once and ride the closures by move, so the measured difference
// is the event machinery itself, not payload churn.
struct FakeDatagram {
  crypto::Bytes payload;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

template <class SimT>
class Cascade {
 public:
  std::uint64_t run(std::size_t population, std::uint64_t events) {
    remaining_ = events;
    for (std::size_t i = 0; i < population; ++i) {
      FakeDatagram d;
      d.payload.assign(96, static_cast<std::uint8_t>(i));
      d.to = static_cast<std::uint32_t>(i & 63);
      schedule(std::move(d));
    }
    sim_.run();
    return checksum_;
  }

 private:
  void schedule(FakeDatagram d) {
    const auto jitter =
        static_cast<sim::SimTime>(rng_.next_u64() % (10 * sim::kMillisecond));
    const sim::SimTime at = sim_.now() + 20 * sim::kMillisecond + jitter;
    sim_.schedule_at(at, [this, d = std::move(d)]() mutable {
      checksum_ += d.payload[0] + d.to;
      if (remaining_ == 0) return;
      --remaining_;
      d.from = d.to;
      d.to = static_cast<std::uint32_t>(rng_.next_u64() & 63);
      schedule(std::move(d));
    });
  }

  SimT sim_;
  Rng rng_{2026};
  std::uint64_t remaining_ = 0;
  std::uint64_t checksum_ = 0;
};

template <class SimT>
void BM_EventCascade(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Cascade<SimT> c;
    benchmark::DoNotOptimize(c.run(1024, events));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventCascade<LegacySimulator>)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventCascade<sim::Simulator>)->Arg(100000)->Unit(benchmark::kMillisecond);

// --- Network send/deliver ------------------------------------------------
// A ping-pong between two hosts through the real Network: interned type tag,
// pooled pending slot, moved payload.  Items = datagrams delivered.
void BM_NetworkPingPong(benchmark::State& state) {
  const auto rounds = static_cast<std::uint64_t>(state.range(0));
  const net::MsgType kPing = net::MsgType::intern("hotpath-ping");
  for (auto _ : state) {
    sim::Simulator s;
    net::Network net(s, Rng(7), net::LatencyModel{});
    std::uint64_t left = rounds;
    crypto::Bytes seed_payload(128, 0xAB);
    net::HostId a = 0, b = 0;
    const auto bounce = [&](const net::Datagram& d) {
      if (left == 0) return;
      --left;
      crypto::Bytes payload = d.payload;  // simulate a reply body
      net.send(d.to, d.from, kPing, std::move(payload));
    };
    a = net.add_host("a.example", bounce);
    b = net.add_host("b.example", bounce);
    net.send(a, b, kPing, std::move(seed_payload));
    s.run();
    benchmark::DoNotOptimize(net.bytes_sent());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_NetworkPingPong)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_MsgTypeIntern(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(net::MsgType::intern("sellreply"));
}
BENCHMARK(BM_MsgTypeIntern);

// --- Exact-reserve serialization -----------------------------------------
void BM_SerializeCreditReport(benchmark::State& state) {
  core::CreditReport report;
  report.seq = 9;
  report.credit.assign(static_cast<std::size_t>(state.range(0)), 12345);
  for (auto _ : state) benchmark::DoNotOptimize(report.serialize());
}
BENCHMARK(BM_SerializeCreditReport)->Arg(64)->Arg(512);

// --- Scratch-buffer envelopes --------------------------------------------
void BM_SealFresh(benchmark::State& state) {
  Rng rng(11);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const core::CreditReport report{3, std::vector<EPenny>(64, 7)};
  const crypto::Bytes plain = report.serialize();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::seal(keys.priv, plain, rng));
}
BENCHMARK(BM_SealFresh);

void BM_SealInto(benchmark::State& state) {
  Rng rng(11);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const core::CreditReport report{3, std::vector<EPenny>(64, 7)};
  const crypto::Bytes plain = report.serialize();
  crypto::Envelope scratch;
  crypto::Bytes wire;
  for (auto _ : state) {
    core::seal_into(keys.priv, plain, rng, scratch, wire);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SealInto);

void BM_UnsealInto(benchmark::State& state) {
  Rng rng(12);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const core::CreditReport report{3, std::vector<EPenny>(64, 7)};
  crypto::Bytes wire = core::seal(keys.priv, report.serialize(), rng);
  crypto::Envelope scratch;
  crypto::Bytes plain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::unseal_into(keys.priv, wire, scratch, plain));
  }
}
BENCHMARK(BM_UnsealInto);

// --- Acceptance check: per-message delivery hot path ----------------------
// The tentpole claim is about the *delivery path*: a host hands a payload to
// the network, an event carries it, the receiving handler observes it.  The
// legacy half below replicates that path exactly as it shipped before this
// change: std::string type tag, payload taken by value (call sites passed
// lvalues, so every send copied the buffer), a std::map FIFO clamp per host,
// and the datagram captured inside a heap-allocating std::function on the
// single priority queue.  The new half is the real net::Network on the real
// simulator: interned MsgType, moved payload, pooled pending slot, 16-byte
// trivially-relocatable closure, calendar queue.  Both halves are fed
// identical host sequences, payload sizes, and latency draws.
class LegacyNetwork {
 public:
  struct Datagram {
    std::string type;
    crypto::Bytes payload;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
  };
  using HandlerFn = std::function<void(const Datagram&)>;

  LegacyNetwork(LegacySimulator& simulator, Rng rng, net::LatencyModel latency)
      : sim_(simulator), rng_(rng), latency_(latency) {}

  std::uint32_t add_host(std::string name, HandlerFn handler) {
    hosts_.push_back(Host{std::move(name), std::move(handler), {}});
    return static_cast<std::uint32_t>(hosts_.size() - 1);
  }

  void send(std::uint32_t from, std::uint32_t to, std::string type,
            crypto::Bytes payload) {
    bytes_ += payload.size() + type.size() + 16;
    sim::SimTime deliver_at = sim_.now() + latency_.sample(rng_);
    auto& last = hosts_[to].last_delivery[from];
    if (deliver_at <= last) deliver_at = last + 1;
    last = deliver_at;
    Datagram d{std::move(type), std::move(payload), from, to};
    sim_.schedule_at(deliver_at, [this, to, d = std::move(d)]() mutable {
      hosts_[to].handler(d);
    });
  }

  std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  struct Host {
    std::string name;
    HandlerFn handler;
    std::map<std::uint32_t, sim::SimTime> last_delivery;
  };
  LegacySimulator& sim_;
  Rng rng_;
  net::LatencyModel latency_;
  std::vector<Host> hosts_;
  std::uint64_t bytes_ = 0;
};

struct SendPlan {
  std::vector<std::uint32_t> from, to;
  std::vector<crypto::Bytes> payloads;  // one 128-byte buffer per message
};

constexpr std::size_t kDeliveryHosts = 64;
// Sends are issued in bounded bursts with a drain in between, modelling a
// steady traffic stream rather than an unbounded in-flight backlog (which
// would measure DRAM, not the send machinery, on both sides).  8192 in
// flight matches the federated E3 runs, where every group keeps a batch of
// emails and bank traffic in the air at once.
constexpr std::size_t kDeliveryBatch = 8192;

SendPlan make_plan(std::size_t rounds) {
  Rng rng(31337);
  SendPlan plan;
  plan.from.reserve(rounds);
  plan.to.reserve(rounds);
  plan.payloads.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    plan.from.push_back(
        static_cast<std::uint32_t>(rng.next_u64() % kDeliveryHosts));
    plan.to.push_back(
        static_cast<std::uint32_t>(rng.next_u64() % kDeliveryHosts));
    plan.payloads.emplace_back(128, static_cast<std::uint8_t>(i));
  }
  return plan;
}

double time_legacy_delivery(const SendPlan& plan) {
  std::vector<crypto::Bytes> payloads = plan.payloads;  // fresh lvalue bufs
  LegacySimulator sim;
  LegacyNetwork net(sim, Rng(7), net::LatencyModel{});
  std::uint64_t checksum = 0;
  for (std::size_t h = 0; h < kDeliveryHosts; ++h)
    net.add_host("h", [&checksum](const LegacyNetwork::Datagram& d) {
      checksum += d.payload[0];
    });
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < payloads.size();) {
    const std::size_t end = std::min(i + kDeliveryBatch, payloads.size());
    for (; i < end; ++i)
      net.send(plan.from[i], plan.to[i], "email", payloads[i]);
    sim.run();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  return s;
}

double time_new_delivery(const SendPlan& plan) {
  std::vector<crypto::Bytes> payloads = plan.payloads;
  sim::Simulator sim;
  net::Network net(sim, Rng(7), net::LatencyModel{});
  std::uint64_t checksum = 0;
  for (std::size_t h = 0; h < kDeliveryHosts; ++h)
    net.add_host("h", [&checksum](const net::Datagram& d) {
      checksum += d.payload[0];
    });
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < payloads.size();) {
    const std::size_t end = std::min(i + kDeliveryBatch, payloads.size());
    for (; i < end; ++i)
      net.send(plan.from[i], plan.to[i], net::kMsgEmail,
               std::move(payloads[i]));
    sim.run();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(checksum);
  return s;
}

// --- Acceptance check: event dispatch -------------------------------------
// Schedules and dispatches delivery events through the bare queues, each
// side carrying its era's real event shape.  Pre-change, a delivery event
// was a std::function owning the whole datagram — heap-allocated closure,
// std::string type tag, and a payload the by-value send API had already
// copied — percolating through one global binary heap.  Post-change, the
// datagram sits in a recycled slot and the event is a 16-byte
// trivially-relocatable InlineEvent in the calendar queue.  Both sides run
// the same deterministic 32ms arrival spread (no RNG) at the same in-flight
// depth, so the ratio isolates exactly what this PR changed.
constexpr std::size_t kDispatchInFlight = 8192;

double time_legacy_dispatch(std::uint64_t events) {
  LegacySimulator sim;
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events;) {
    const std::uint64_t end = std::min(i + kDispatchInFlight, events);
    for (; i < end; ++i) {
      LegacyNetwork::Datagram d{"email", crypto::Bytes(128, 1),
                                static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(i + 1)};
      sim.schedule_at(
          sim.now() + (20 + static_cast<sim::SimTime>(i & 31)) * sim::kMillisecond,
          [&sum, d = std::move(d)] { sum += d.to; });
    }
    sim.run();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(sum);
  return s;
}

double time_new_dispatch(std::uint64_t events) {
  sim::Simulator sim;
  std::vector<net::Datagram> pool;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t sum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events;) {
    const std::uint64_t end = std::min(i + kDispatchInFlight, events);
    for (; i < end; ++i) {
      std::uint32_t slot;
      if (free_slots.empty()) {
        slot = static_cast<std::uint32_t>(pool.size());
        pool.emplace_back();
      } else {
        slot = free_slots.back();
        free_slots.pop_back();
      }
      net::Datagram& d = pool[slot];
      d.type = net::kMsgEmail;
      d.from = i;
      d.to = i + 1;
      auto* pp = &pool;
      auto* fp = &free_slots;
      auto* sp = &sum;
      sim.schedule_at(
          sim.now() + (20 + static_cast<sim::SimTime>(i & 31)) * sim::kMillisecond,
          [pp, fp, sp, slot] {
            net::Datagram d = std::move((*pp)[slot]);
            fp->push_back(slot);
            *sp += d.to;
          });
    }
    sim.run();
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(sum);
  return s;
}

void check_dispatch_speedup(bench::Bench& harness) {
  const bool smoke = harness.options().smoke;

  // Event dispatch, era-faithful event shapes (the acceptance number).
  const std::uint64_t events =
      (smoke ? 4 : 48) * static_cast<std::uint64_t>(kDispatchInFlight);
  const int reps = smoke ? 3 : 5;
  double legacy_s = 1e99, new_s = 1e99;
  for (int r = 0; r < reps; ++r) {
    legacy_s = std::min(legacy_s, time_legacy_dispatch(events));
    new_s = std::min(new_s, time_new_dispatch(events));
  }
  const double speedup = new_s > 0.0 ? legacy_s / new_s : 0.0;
  std::printf(
      "event dispatch:  legacy %.1f ns/ev, calendar+inline %.1f ns/ev, "
      "%.2fx speedup\n",
      1e9 * legacy_s / static_cast<double>(events),
      1e9 * new_s / static_cast<double>(events), speedup);
  harness.metrics()["dispatch_legacy_seconds"] = legacy_s;
  harness.metrics()["dispatch_new_seconds"] = new_s;
  harness.metrics()["dispatch_events"] = static_cast<double>(events);
  harness.metrics()["dispatch_speedup"] = speedup;

  // Full send -> event -> handler network path, era-faithful on both sides
  // (reported; shared costs — latency sampling, payload frees, handler —
  // sit on both sides, so this end-to-end ratio is naturally smaller).
  const std::size_t rounds = (smoke ? 2 : 24) * kDeliveryBatch;
  const int dreps = smoke ? 3 : 5;
  const SendPlan plan = make_plan(rounds);
  double dlegacy_s = 1e99, dnew_s = 1e99;
  for (int r = 0; r < dreps; ++r) {
    dlegacy_s = std::min(dlegacy_s, time_legacy_delivery(plan));
    dnew_s = std::min(dnew_s, time_new_delivery(plan));
  }
  const double dspeedup = dnew_s > 0.0 ? dlegacy_s / dnew_s : 0.0;
  std::printf(
      "network e2e:     legacy %.1f ns/msg, flattened %.1f ns/msg, "
      "%.2fx speedup\n",
      1e9 * dlegacy_s / static_cast<double>(rounds),
      1e9 * dnew_s / static_cast<double>(rounds), dspeedup);
  harness.metrics()["delivery_legacy_seconds"] = dlegacy_s;
  harness.metrics()["delivery_new_seconds"] = dnew_s;
  harness.metrics()["delivery_speedup"] = dspeedup;

  if (!smoke)
    harness.check(speedup >= 3.0,
                  "event dispatch >= 3x faster than the pre-change "
                  "std::function/priority_queue pipeline");
}

}  // namespace

int main(int argc, char** argv) {
  zmail::bench::Bench harness("micro_hotpath", argc, argv);
  check_dispatch_speedup(harness);
  return zmail::bench::run_micro(harness, argc, argv);
}
