file(REMOVE_RECURSE
  "CMakeFiles/mailing_list.dir/mailing_list.cpp.o"
  "CMakeFiles/mailing_list.dir/mailing_list.cpp.o.d"
  "mailing_list"
  "mailing_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailing_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
