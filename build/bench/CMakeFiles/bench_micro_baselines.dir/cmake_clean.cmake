file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_baselines.dir/bench_micro_baselines.cpp.o"
  "CMakeFiles/bench_micro_baselines.dir/bench_micro_baselines.cpp.o.d"
  "bench_micro_baselines"
  "bench_micro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
