#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace zmail {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(Histogram, PercentileOnUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(10), 10.0, 1.5);
}

TEST(Histogram, EmptyPercentileIsLowerBound) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_EQ(h.percentile(50), 5.0);
}

TEST(Histogram, SingleBucketPercentile) {
  Histogram h(0.0, 10.0, 1);
  h.add(3.0);
  h.add(7.0);
  // With one bucket every percentile lands inside [lo, hi].
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 0.0);
    EXPECT_LE(h.percentile(p), 10.0);
  }
}

TEST(Histogram, PercentileClampsOutOfRangeArgument) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.percentile(-20.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(250.0), h.percentile(100.0));
  EXPECT_LE(h.percentile(250.0), 10.0);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  a.add(2.5);
  b.add(2.5);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 2u);
  EXPECT_EQ(a.buckets()[9], 1u);
}

TEST(Histogram, MergeWithEmptyKeepsCounts) {
  Histogram a(0.0, 10.0, 4);
  Histogram empty(0.0, 10.0, 4);
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
}

TEST(Histogram, SameShapeDetectsMismatch) {
  Histogram a(0.0, 10.0, 4);
  EXPECT_TRUE(a.same_shape(Histogram(0.0, 10.0, 4)));
  EXPECT_FALSE(a.same_shape(Histogram(0.0, 10.0, 5)));
  EXPECT_FALSE(a.same_shape(Histogram(0.0, 20.0, 4)));
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, AsciiRendersEveryBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string art = h.ascii(20);
  // 4 lines, hash bars present.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Sample, PercentileExact) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Sample, Aggregates) {
  Sample s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Sample, EmptyMeanIsZero) {
  Sample s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Sample, MergeConcatenatesOursFirst) {
  Sample a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.values()[0], 1.0);
  EXPECT_EQ(a.values()[1], 2.0);
  EXPECT_EQ(a.values()[2], 3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

}  // namespace
}  // namespace zmail
