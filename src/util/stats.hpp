// Streaming statistics and histograms used by benches and experiments.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace zmail {

// Welford online mean/variance with min/max tracking.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& o) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bucket linear histogram over [lo, hi); out-of-range values clamp to
// the edge buckets so nothing is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  // Bucket-wise sum; both histograms must have identical bounds and bucket
  // count (the sweep harness guarantees this by constructing replica
  // histograms from one spec).
  void merge(const Histogram& o) noexcept;
  bool same_shape(const Histogram& o) const noexcept {
    return lo_ == o.lo_ && hi_ == o.hi_ && counts_.size() == o.counts_.size();
  }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint64_t total() const noexcept { return total_; }
  double percentile(double p) const noexcept;  // p in [0, 100]
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;

  // Multi-line ASCII rendering (for example programs).
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Exact percentile over a stored sample (for small/medium samples).
class Sample {
 public:
  void add(double x) { xs_.push_back(x); }
  // Concatenates the other sample's observations (order preserved:
  // ours first, then theirs — merge order therefore matters for
  // bit-identical reproduction and the sweep harness fixes it).
  void merge(const Sample& o) {
    xs_.insert(xs_.end(), o.xs_.begin(), o.xs_.end());
  }
  const std::vector<double>& values() const noexcept { return xs_; }
  std::size_t size() const noexcept { return xs_.size(); }
  bool empty() const noexcept { return xs_.empty(); }
  double percentile(double p) const;  // p in [0, 100]; sorts a copy
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;

 private:
  std::vector<double> xs_;
};

}  // namespace zmail
