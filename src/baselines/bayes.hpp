// Naive-Bayes content filter (Sahami et al. 1998 style), from scratch.
//
// The canonical representative of the paper's "content based filtering
// approaches" (Section 2.2).  Multinomial naive Bayes over word tokens with
// Laplace smoothing and a log-odds decision threshold.  The two failure
// modes the paper dwells on — false positives on legitimate bulk mail, and
// evasion through deliberate misspelling — both emerge measurably from this
// implementation (bench_e10).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/email.hpp"

namespace zmail::baselines {

class NaiveBayesFilter {
 public:
  // `threshold` is the log-odds above which a message is classified spam;
  // raising it trades false positives for false negatives.
  explicit NaiveBayesFilter(double threshold = 0.0) : threshold_(threshold) {}

  void train(const std::string& text, bool is_spam);
  void train_message(const net::EmailMessage& msg, bool is_spam);

  // Log-odds log(P(spam|text) / P(ham|text)) under naive Bayes.
  double score(const std::string& text) const;
  bool is_spam(const std::string& text) const {
    return score(text) > threshold_;
  }
  bool is_spam(const net::EmailMessage& msg) const;

  void set_threshold(double t) noexcept { threshold_ = t; }
  double threshold() const noexcept { return threshold_; }

  std::uint64_t spam_docs() const noexcept { return spam_docs_; }
  std::uint64_t ham_docs() const noexcept { return ham_docs_; }
  std::size_t vocabulary_size() const noexcept { return vocab_.size(); }

 private:
  struct Counts {
    std::uint64_t spam = 0;
    std::uint64_t ham = 0;
  };

  std::unordered_map<std::string, Counts> vocab_;
  std::uint64_t spam_tokens_ = 0;
  std::uint64_t ham_tokens_ = 0;
  std::uint64_t spam_docs_ = 0;
  std::uint64_t ham_docs_ = 0;
  double threshold_;
};

// Confusion-matrix accumulator for filter evaluations.
struct FilterEvaluation {
  std::uint64_t true_positive = 0;   // spam flagged spam
  std::uint64_t false_positive = 0;  // ham flagged spam (the costly error)
  std::uint64_t true_negative = 0;
  std::uint64_t false_negative = 0;  // spam delivered

  void add(bool truth_spam, bool flagged_spam) noexcept;
  double false_positive_rate() const noexcept;
  double false_negative_rate() const noexcept;
  double precision() const noexcept;
  double recall() const noexcept;
};

}  // namespace zmail::baselines
