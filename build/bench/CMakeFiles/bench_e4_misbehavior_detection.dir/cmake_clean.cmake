file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_misbehavior_detection.dir/bench_e4_misbehavior_detection.cpp.o"
  "CMakeFiles/bench_e4_misbehavior_detection.dir/bench_e4_misbehavior_detection.cpp.o.d"
  "bench_e4_misbehavior_detection"
  "bench_e4_misbehavior_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_misbehavior_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
