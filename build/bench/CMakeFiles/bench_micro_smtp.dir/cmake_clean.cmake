file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_smtp.dir/bench_micro_smtp.cpp.o"
  "CMakeFiles/bench_micro_smtp.dir/bench_micro_smtp.cpp.o.d"
  "bench_micro_smtp"
  "bench_micro_smtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_smtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
