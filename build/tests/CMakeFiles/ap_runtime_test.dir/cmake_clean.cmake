file(REMOVE_RECURSE
  "CMakeFiles/ap_runtime_test.dir/ap_runtime_test.cpp.o"
  "CMakeFiles/ap_runtime_test.dir/ap_runtime_test.cpp.o.d"
  "ap_runtime_test"
  "ap_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
