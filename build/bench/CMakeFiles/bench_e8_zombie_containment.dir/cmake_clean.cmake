file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_zombie_containment.dir/bench_e8_zombie_containment.cpp.o"
  "CMakeFiles/bench_e8_zombie_containment.dir/bench_e8_zombie_containment.cpp.o.d"
  "bench_e8_zombie_containment"
  "bench_e8_zombie_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_zombie_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
