#include <gtest/gtest.h>

#include "baselines/blacklist.hpp"
#include "baselines/challenge.hpp"
#include "baselines/pipeline.hpp"
#include "baselines/pow_mail.hpp"
#include "baselines/shred.hpp"

namespace zmail::baselines {
namespace {

net::EmailAddress addr(const char* s) { return *net::parse_address(s); }

// --- Blacklist / whitelist ---------------------------------------------------

TEST(Blacklist, BlocksListedDomains) {
  Blacklist bl;
  bl.add_domain("spamhaus.example");
  EXPECT_TRUE(bl.blocked(addr("a@spamhaus.example")));
  EXPECT_FALSE(bl.blocked(addr("a@clean.example")));
  bl.remove_domain("spamhaus.example");
  EXPECT_FALSE(bl.blocked(addr("a@spamhaus.example")));
}

TEST(Whitelist, AllowsExactAddressesOnly) {
  Whitelist wl;
  wl.add(addr("friend@x.example"));
  EXPECT_TRUE(wl.allowed(addr("friend@x.example")));
  EXPECT_FALSE(wl.allowed(addr("stranger@x.example")));
  EXPECT_FALSE(wl.allowed(addr("friend@y.example")));
  wl.remove(addr("friend@x.example"));
  EXPECT_FALSE(wl.allowed(addr("friend@x.example")));
}

// --- Challenge-response ------------------------------------------------------

TEST(Challenge, FirstContactIsChallengedThenWhitelisted) {
  ChallengeParams p;
  p.human_response_prob = 1.0;
  ChallengeResponse cr(p, zmail::Rng(1));
  EXPECT_TRUE(cr.process(addr("a@x.example"), false));
  EXPECT_EQ(cr.stats().challenges_issued, 1u);
  EXPECT_EQ(cr.stats().delivered_after_challenge, 1u);
  // Second mail from the same sender flows freely.
  EXPECT_TRUE(cr.process(addr("a@x.example"), false));
  EXPECT_EQ(cr.stats().challenges_issued, 1u);
  EXPECT_EQ(cr.stats().delivered_whitelisted, 1u);
}

TEST(Challenge, SpamMostlyBlocked) {
  ChallengeParams p;
  p.spammer_solve_prob = 0.0;
  ChallengeResponse cr(p, zmail::Rng(2));
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(cr.process(addr(("s" + std::to_string(i) + "@z.ex").c_str()),
                            true));
  EXPECT_EQ(cr.stats().spam_blocked, 100u);
  EXPECT_EQ(cr.stats().spam_delivered, 0u);
}

TEST(Challenge, LegitimateMailIsLostWhenSendersIgnoreChallenges) {
  ChallengeParams p;
  p.human_response_prob = 0.0;  // nobody answers
  ChallengeResponse cr(p, zmail::Rng(3));
  EXPECT_FALSE(cr.process(addr("a@x.example"), false));
  EXPECT_EQ(cr.stats().lost_no_response, 1u);
}

TEST(Challenge, HumanEffortAccumulates) {
  ChallengeParams p;
  p.human_response_prob = 1.0;
  p.human_seconds_per_challenge = 10.0;
  ChallengeResponse cr(p, zmail::Rng(4));
  for (int i = 0; i < 5; ++i)
    cr.process(addr(("u" + std::to_string(i) + "@x.ex").c_str()), false);
  EXPECT_DOUBLE_EQ(cr.stats().human_seconds, 50.0);
  EXPECT_EQ(cr.whitelist_size(), 5u);
}

// --- Proof-of-work -----------------------------------------------------------

TEST(PowMailer, SolvedStampsVerify) {
  PowMailer mailer(PowMailParams{8, 2e6});
  const PowSendRecord rec = mailer.send("r@x.example");
  EXPECT_TRUE(PowMailer::verify(rec.stamp));
  EXPECT_GE(rec.hash_attempts, 1u);
  EXPECT_EQ(mailer.messages_sent(), 1u);
}

TEST(PowMailer, AttemptsAccumulateAcrossSends) {
  PowMailer mailer(PowMailParams{6, 2e6});
  std::uint64_t sum = 0;
  for (int i = 0; i < 10; ++i) sum += mailer.send("r@x.example").hash_attempts;
  EXPECT_EQ(mailer.total_attempts(), sum);
}

TEST(PowMailer, ExpectedAttemptsDoublePerBit) {
  EXPECT_DOUBLE_EQ(PowMailer(PowMailParams{10, 1e6}).expected_attempts(),
                   1024.0);
  EXPECT_DOUBLE_EQ(PowMailer(PowMailParams{11, 1e6}).expected_attempts(),
                   2048.0);
}

TEST(PowMailer, MaxDailyRateFallsExponentially) {
  const double easy = PowMailer(PowMailParams{10, 1e6}).max_daily_rate();
  const double hard = PowMailer(PowMailParams{20, 1e6}).max_daily_rate();
  EXPECT_NEAR(easy / hard, 1024.0, 1.0);
}

// --- SHRED / Vanquish --------------------------------------------------------

TEST(Shred, OnlyReportedSpamCostsTheSpammer) {
  ShredParams p;
  p.report_prob = 1.0;
  ShredScheme shred(p, zmail::Rng(5));
  for (int i = 0; i < 100; ++i) shred.process(true);
  for (int i = 0; i < 100; ++i) shred.process(false);
  EXPECT_EQ(shred.stats().reports, 100u);
  EXPECT_EQ(shred.stats().spammer_paid, Money::from_cents(100));
  EXPECT_EQ(shred.stats().messages, 200u);
}

TEST(Shred, LowMotivationMeansLowDeterrence) {
  // Paper weakness 2: receivers aren't rewarded, so few report.
  ShredParams p;
  p.report_prob = 0.1;
  ShredScheme shred(p, zmail::Rng(6));
  for (int i = 0; i < 10'000; ++i) shred.process(true);
  const double paid = shred.stats().spammer_paid.dollars();
  EXPECT_NEAR(paid, 10.0, 3.0);  // ~10% of $100
  EXPECT_EQ(shred.expected_spammer_cost_per_spam(),
            Money::from_cents(1) * 0.1);
}

TEST(Shred, CollusionZeroesDeterrenceButNotReceiverEffort) {
  // Paper weakness 3.
  ShredParams p;
  p.report_prob = 1.0;
  p.isp_colludes = true;
  ShredScheme shred(p, zmail::Rng(7));
  for (int i = 0; i < 100; ++i) shred.process(true);
  EXPECT_TRUE(shred.stats().spammer_paid.is_zero());
  EXPECT_TRUE(shred.expected_spammer_cost_per_spam().is_zero());
  EXPECT_GT(shred.stats().receiver_human_seconds, 0.0);
}

TEST(Shred, HandlingCostCanExceedPaymentValue) {
  // Paper weakness 4: 2-cent handling per 1-cent payment.
  ShredParams p;
  p.report_prob = 1.0;
  ShredScheme shred(p, zmail::Rng(8));
  for (int i = 0; i < 50; ++i) shred.process(true);
  EXPECT_GT(shred.stats().isp_handling_cost, shred.stats().isp_revenue);
  EXPECT_EQ(shred.stats().ledger_operations, 50u);
}

TEST(Vanquish, HigherParticipationCheaperReports) {
  const ShredParams v = vanquish_as_shred(VanquishParams{});
  EXPECT_GT(v.report_prob, ShredParams{}.report_prob);
  EXPECT_LT(v.human_seconds_per_report,
            ShredParams{}.human_seconds_per_report);
}

// --- Pipeline ----------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    pipeline_.whitelist().add(addr("boss@corp.example"));
    pipeline_.blacklist().add_domain("spamhaus.example");
    for (int i = 0; i < 50; ++i) {
      pipeline_.content().train("zxcasino zxpills zxwinner", true);
      pipeline_.content().train("wreport wmeeting wbudget", false);
    }
  }
  FilterPipeline pipeline_;

  net::EmailMessage msg(const char* from, const char* body) {
    return net::make_email(addr(from), addr("me@corp.example"), "s", body);
  }
};

TEST_F(PipelineTest, WhitelistShortCircuitsEverything) {
  // Even spammy content from a whitelisted sender is delivered.
  EXPECT_EQ(pipeline_.classify(msg("boss@corp.example", "zxcasino zxpills")),
            FilterVerdict::kDeliverWhitelisted);
}

TEST_F(PipelineTest, BlacklistBeatsContent) {
  EXPECT_EQ(pipeline_.classify(msg("x@spamhaus.example", "wreport wmeeting")),
            FilterVerdict::kRejectBlacklisted);
}

TEST_F(PipelineTest, ContentFilterCatchesTheRest) {
  EXPECT_EQ(pipeline_.classify(msg("new@other.example", "zxcasino zxwinner")),
            FilterVerdict::kRejectContent);
  EXPECT_EQ(pipeline_.classify(msg("new@other.example", "wreport wbudget")),
            FilterVerdict::kDeliver);
}

TEST_F(PipelineTest, RejectsHelper) {
  EXPECT_TRUE(pipeline_.rejects(msg("x@spamhaus.example", "hi")));
  EXPECT_FALSE(pipeline_.rejects(msg("boss@corp.example", "zxcasino")));
}

TEST(FilterVerdictName, AllNamed) {
  EXPECT_STREQ(filter_verdict_name(FilterVerdict::kDeliver), "deliver");
  EXPECT_STREQ(filter_verdict_name(FilterVerdict::kRejectContent),
               "reject-content");
}

}  // namespace
}  // namespace zmail::baselines
