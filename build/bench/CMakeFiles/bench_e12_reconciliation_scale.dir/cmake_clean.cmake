file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_reconciliation_scale.dir/bench_e12_reconciliation_scale.cpp.o"
  "CMakeFiles/bench_e12_reconciliation_scale.dir/bench_e12_reconciliation_scale.cpp.o.d"
  "bench_e12_reconciliation_scale"
  "bench_e12_reconciliation_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_reconciliation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
