file(REMOVE_RECURSE
  "CMakeFiles/core_mailing_list_test.dir/core_mailing_list_test.cpp.o"
  "CMakeFiles/core_mailing_list_test.dir/core_mailing_list_test.cpp.o.d"
  "core_mailing_list_test"
  "core_mailing_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mailing_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
