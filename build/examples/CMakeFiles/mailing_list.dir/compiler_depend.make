# Empty compiler generated dependencies file for mailing_list.
# This may be replaced when dependencies are built.
