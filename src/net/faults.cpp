#include "net/faults.hpp"

namespace zmail::net {

bool FaultInjector::partitioned(sim::SimTime now, HostId a,
                                HostId b) const noexcept {
  for (const Partition& p : plan_.partitions) {
    const bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && now >= p.from && now < p.until) return true;
  }
  return false;
}

sim::SimTime FaultInjector::down_until(sim::SimTime now,
                                       HostId h) const noexcept {
  for (const HostOutage& o : plan_.outages)
    if (o.host == h && now >= o.from && now < o.until) return o.until;
  return 0;
}

FaultInjector::Fate FaultInjector::on_send(sim::SimTime now, HostId from,
                                           HostId to, MsgType type) {
  Fate fate;
  // Topology faults first — a crashed sender emits nothing and a
  // partitioned link swallows the send whatever the datagram type; the
  // per-datagram rates below honour the only_types filter.
  if (down_until(now, from) != 0) {
    ++counters_.outage_lost;
    fate.drop = true;
    return fate;
  }
  if (partitioned(now, from, to)) {
    ++counters_.partitioned;
    fate.drop = true;
    return fate;
  }
  if (!plan_.applies_to(type)) return fate;
  // Fixed draw order keeps the fault stream replayable: drop, duplicate,
  // then per-copy fates decided by the caller via this same Fate.
  const FaultRates& r = plan_.rates;
  if (r.drop > 0.0 && rng_.bernoulli(r.drop)) {
    ++counters_.dropped;
    fate.drop = true;
    return fate;
  }
  if (r.duplicate > 0.0 && rng_.bernoulli(r.duplicate)) {
    ++counters_.duplicated;
    fate.copies = 2;
  }
  if (r.reorder > 0.0 && rng_.bernoulli(r.reorder)) {
    ++counters_.reordered;
    fate.reorder = true;
  }
  if (r.corrupt > 0.0 && rng_.bernoulli(r.corrupt)) {
    ++counters_.corrupted;
    fate.corrupt = true;
  }
  if (r.truncate > 0.0 && rng_.bernoulli(r.truncate)) {
    ++counters_.truncated;
    fate.truncate = true;
  }
  if (r.delay_spike > 0.0 && rng_.bernoulli(r.delay_spike)) {
    ++counters_.delayed;
    fate.extra_delay = sim::from_seconds(
        rng_.exponential(1.0 / sim::to_seconds(r.spike_mean)));
  }
  return fate;
}

void FaultInjector::corrupt_payload(crypto::Bytes& payload) {
  if (payload.empty()) return;
  const std::uint64_t bit = rng_.next_below(payload.size() * 8);
  payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void FaultInjector::truncate_payload(crypto::Bytes& payload) {
  if (payload.empty()) return;
  payload.resize(rng_.next_below(payload.size()));
}

}  // namespace zmail::net
