// Messages exchanged between Abstract Protocol processes.
//
// In the AP notation (Gouda, "Elements of Network Protocol Design") a
// message is a named tuple travelling through a reliable FIFO channel; we
// carry the tuple as serialized bytes so that higher layers can route both
// plaintext email and NCR-encrypted bank traffic through the same runtime.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/bytes.hpp"

namespace zmail::ap {

using ProcessId = std::size_t;
constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

struct Message {
  std::string type;            // e.g. "email", "buy", "request"
  crypto::Bytes payload;       // serialized fields
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
};

}  // namespace zmail::ap
