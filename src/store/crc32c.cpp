#include "store/crc32c.hpp"

#include <array>

namespace zmail::store {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC contribution of byte b at lag k (slice-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b)
      for (std::size_t k = 1; k < 8; ++k)
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
  }
};

constexpr Tables kTables{};

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  const auto& t = kTables.t;
  while (len >= 8) {
    const std::uint32_t lo = load_le32(p) ^ crc;
    const std::uint32_t hi = load_le32(p + 4);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace zmail::store
