// Simulated host-to-host network with latency, bound to the event simulator.
//
// Hosts (ISP mail servers, the bank) register a handler for typed datagrams;
// `send` schedules delivery after a sampled latency.  Delivery is reliable
// and per-pair FIFO (matching the AP channel abstraction); the byte counters
// feed the ISP-overhead experiment (E3).
//
// Hot-path layout (see DESIGN.md "Hot path"): a datagram's payload is moved
// into a pooled pending slot, the scheduled delivery closure captures only
// {network, slot} (fits InlineEvent's inline buffer), and delivery moves the
// datagram back out for the handler — the payload bytes are never copied
// between send() and the handler.  Per-pair FIFO clamps live in flat
// vectors indexed by host id; only MX names pay for hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/msg_type.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace zmail::net {

using HostId = std::size_t;
constexpr HostId kNoHost = static_cast<HostId>(-1);

struct Datagram {
  MsgType type;
  crypto::Bytes payload;
  HostId from = kNoHost;
  HostId to = kNoHost;
};

// Latency model: base plus exponential jitter.
struct LatencyModel {
  sim::Duration base = 20 * sim::kMillisecond;
  sim::Duration jitter_mean = 10 * sim::kMillisecond;

  sim::Duration sample(Rng& rng) const {
    if (jitter_mean <= 0) return base;  // jitter-free links draw no RNG
    return base + sim::from_seconds(
                      rng.exponential(1.0 / sim::to_seconds(jitter_mean)));
  }
};

class Network {
 public:
  using HandlerFn = std::function<void(const Datagram&)>;

  Network(sim::Simulator& simulator, Rng rng,
          LatencyModel latency = LatencyModel{});

  // Registers a host; the handler runs at delivery time.
  HostId add_host(std::string name, HandlerFn handler);

  // Reliable, latency-delayed, per-pair FIFO delivery.  The payload is
  // consumed: it moves through the pending slot to the handler unexposed to
  // any copy.
  void send(HostId from, HostId to, MsgType type, crypto::Bytes&& payload);

  // MX-style name resolution (domain -> host).
  void bind_domain(const std::string& domain, HostId host);
  HostId resolve(const std::string& domain) const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_.at(h).name; }

  std::uint64_t datagrams_sent() const noexcept { return datagrams_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }
  // Bytes delivered toward `h`; 0 for hosts that never received traffic
  // (including ids never registered).
  std::uint64_t bytes_sent_to(HostId h) const noexcept {
    return h < bytes_to_.size() ? bytes_to_[h] : 0;
  }

 private:
  struct Host {
    std::string name;
    HandlerFn handler;
    // Last scheduled delivery per sender host id, to preserve FIFO under
    // jitter.  Grown on demand; 0 means "nothing scheduled yet".
    std::vector<sim::SimTime> last_from;
  };

  void deliver(std::uint32_t slot);

  sim::Simulator& sim_;
  Rng rng_;
  LatencyModel latency_;
  std::vector<Host> hosts_;
  std::unordered_map<std::string, HostId> mx_;
  std::uint64_t datagrams_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> bytes_to_;
  // In-flight datagram pool: slots are recycled so steady-state traffic
  // stops allocating; payload buffers are moved in and out, never copied.
  std::vector<Datagram> pending_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace zmail::net
