// E3 — ISP overhead (paper Section 1.2, claim 3).
//
// Claim: "The Zmail protocol significantly reduces spam and therefore
// reduces the overhead costs of ISPs by saving their disk space, bandwidth,
// and computational cost for running spam filters."
//
// Regenerates:
//   E3.a  monthly cost per million mailboxes vs spam share (8% in 2001 ->
//         60%+ in April 2004, the paper's Brightmail figures)
//   E3.b  the same ISP before/after Zmail adoption (spam collapses to the
//         residual paid-spam trickle; the content filter is switched off)
//   E3.c  measured SMTP bytes on the simulated wire, with and without a
//         spam campaign
#include "bench_common.hpp"
#include "core/system.hpp"
#include "econ/isp_cost.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

void e3a_cost_vs_spam_share() {
  // 1M users x 20 legitimate messages/day x 30 days.
  const std::uint64_t legit = 600'000'000ULL;
  econ::MessageProfile prof;
  econ::ResourcePrices prices;

  Table t({"spam share", "spam msgs", "bandwidth", "storage", "filter CPU",
           "total", "spam-attributable"});
  Money spam_cost_2001, spam_cost_2004;
  for (double share : {0.08, 0.30, 0.60, 0.75}) {
    const auto spam = static_cast<std::uint64_t>(
        static_cast<double>(legit) * share / (1.0 - share));
    const econ::IspCostBreakdown b =
        econ::isp_cost({legit, spam}, prof, prices, 0.5);
    t.add_row({Table::pct(share, 0), Table::num(spam),
               b.bandwidth.str(), b.storage.str(), b.filter_cpu.str(),
               b.total.str(), b.attributable_to_spam.str()});
    if (share == 0.08) spam_cost_2001 = b.attributable_to_spam;
    if (share == 0.60) spam_cost_2004 = b.attributable_to_spam;
  }
  t.print("E3.a  monthly cost, 1M mailboxes, by spam share (2001 -> 2004)");

  bench::check(spam_cost_2004 > spam_cost_2001 * 10,
               "spam-attributable cost grew >10x from 2001 (8%) to 2004 (60%)");
}

void e3b_before_after_zmail() {
  const std::uint64_t legit = 600'000'000ULL;
  const std::uint64_t spam_smtp = 900'000'000ULL;  // 60% share
  econ::ResourcePrices prices;

  econ::MessageProfile with_filter;
  const econ::IspCostBreakdown before =
      econ::isp_cost({legit, spam_smtp}, with_filter, prices, 0.5);

  // Under Zmail: spam volume falls to the economically rational residue
  // (targeted, paid campaigns — take 2% of the old volume) and the content
  // filter is retired ("no definition of what is and is not spam").
  econ::MessageProfile no_filter;
  no_filter.filtered = false;
  const econ::IspCostBreakdown after =
      econ::isp_cost({legit, spam_smtp / 50}, no_filter, prices, 1.0);

  Table t({"world", "spam msgs", "bandwidth", "storage", "filter CPU",
           "total"});
  t.add_row({"SMTP + filters", Table::num(spam_smtp), before.bandwidth.str(),
             before.storage.str(), before.filter_cpu.str(),
             before.total.str()});
  t.add_row({"Zmail", Table::num(spam_smtp / 50), after.bandwidth.str(),
             after.storage.str(), after.filter_cpu.str(), after.total.str()});
  t.print("E3.b  the same ISP before/after Zmail adoption (monthly)");

  const double saved =
      1.0 - after.total.dollars() / before.total.dollars();
  std::printf("overhead saved by Zmail: %.0f%%\n", saved * 100.0);
  bench::check(saved > 0.4, "Zmail cuts ISP overhead substantially (>40%)");
}

void e3c_measured_wire_bytes() {
  auto run = [](std::size_t spam_messages) {
    core::ZmailParams p;
    p.n_isps = 3;
    p.users_per_isp = 30;
    p.initial_user_balance = 10'000;
    p.default_daily_limit = 100'000;
    p.record_inboxes = false;
    core::ZmailSystem sys(p, 31);
    workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(32));
    workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                       Rng(33));
    traffic.build_contacts();
    traffic.burst(500);
    if (spam_messages > 0) {
      workload::SpamCampaignParams cp;
      cp.messages = spam_messages;
      Rng rng(34);
      workload::run_spam_campaign(sys, cp, corpus, rng);
    }
    sys.run_for(2 * sim::kHour);
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < p.n_isps; ++i)
      bytes += sys.smtp_bytes_received(i);
    return bytes;
  };

  const std::uint64_t clean = run(0);
  const std::uint64_t spammy = run(1'000);

  Table t({"workload", "SMTP bytes on the wire"});
  t.add_row({"500 legit messages", Table::num(clean)});
  t.add_row({"500 legit + 1000 spam", Table::num(spammy)});
  t.print("E3.c  measured SMTP transfer bytes (full RFC-821 dialogues)");

  bench::check(spammy > clean * 2,
               "spam dominates wire bytes when it dominates volume");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e3_isp_overhead", argc, argv);
  std::printf("=== E3: ISP overhead ===\n");
  e3a_cost_vs_spam_share();
  e3b_before_after_zmail();
  e3c_measured_wire_bytes();
  return harness.finish();
}
