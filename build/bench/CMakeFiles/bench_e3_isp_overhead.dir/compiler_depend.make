# Empty compiler generated dependencies file for bench_e3_isp_overhead.
# This may be replaced when dependencies are built.
