// Console table rendering for experiment output.
//
// Every bench binary prints its results through Table so that EXPERIMENTS.md
// rows can be regenerated mechanically and diffed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zmail {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  static std::string pct(double fraction, int precision = 2);  // 0.25 -> "25.00%"
  static std::string sci(double v, int precision = 2);

  // Unicode block-character sparkline of `values` scaled to its own
  // min..max range, `width` cells wide (values are bucket-averaged when
  // there are more than `width` of them).  Empty input -> empty string;
  // a flat series renders as all-low blocks.
  static std::string sparkline(const std::vector<double>& values,
                               std::size_t width = 48);

  // Render with aligned columns and a separator under the header.
  std::string str() const;
  // Render as CSV (headers + rows).
  std::string csv() const;
  // Print `str()` to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zmail
