file(REMOVE_RECURSE
  "CMakeFiles/econ_test.dir/econ_test.cpp.o"
  "CMakeFiles/econ_test.dir/econ_test.cpp.o.d"
  "econ_test"
  "econ_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/econ_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
