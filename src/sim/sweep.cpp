#include "sim/sweep.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace zmail::sweep {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t point_index,
                          std::uint64_t replica) noexcept {
  // Three splitmix64 steps with the coordinates folded in between; the
  // golden-ratio constants decorrelate (0,0), (0,1), (1,0), ... even for
  // tiny inputs.
  std::uint64_t s = base_seed;
  splitmix64(s);
  s ^= point_index * 0x9E3779B97F4A7C15ULL;
  splitmix64(s);
  s ^= replica * 0xBF58476D1CE4E5B9ULL;
  std::uint64_t t = s;
  return splitmix64(t);
}

Histogram& MetricBag::hist(const std::string& name, double lo, double hi,
                           std::size_t buckets) {
  auto it = hists_.find(name);
  if (it == hists_.end())
    it = hists_.emplace(name, Histogram(lo, hi, buckets)).first;
  ZMAIL_ASSERT_MSG(it->second.same_shape(Histogram(lo, hi, buckets)),
                   "histogram re-declared with a different shape");
  return it->second;
}

const OnlineStats* MetricBag::find_stat(const std::string& name) const {
  const auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

double MetricBag::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

void MetricBag::merge(const MetricBag& o) {
  for (const auto& [name, s] : o.stats_) stats_[name].merge(s);
  for (const auto& [name, h] : o.hists_) {
    const auto it = hists_.find(name);
    if (it == hists_.end())
      hists_.emplace(name, h);
    else
      it->second.merge(h);
  }
  for (const auto& [name, c] : o.counters_) counters_[name] += c;
}

json::Value MetricBag::to_json() const {
  json::Value out = json::Value::object();
  if (!counters_.empty()) {
    json::Value& c = out["counters"];
    for (const auto& [name, v] : counters_) c[name] = v;
  }
  if (!stats_.empty()) {
    json::Value& st = out["stats"];
    for (const auto& [name, s] : stats_) {
      json::Value& j = st[name];
      j["count"] = s.count();
      j["mean"] = s.mean();
      j["stddev"] = s.stddev();
      j["min"] = s.min();
      j["max"] = s.max();
      j["sum"] = s.sum();
    }
  }
  if (!hists_.empty()) {
    json::Value& hs = out["histograms"];
    for (const auto& [name, h] : hists_) {
      json::Value& j = hs[name];
      j["lo"] = h.lo();
      j["hi"] = h.hi();
      j["total"] = h.total();
      j["p50"] = h.percentile(50);
      j["p90"] = h.percentile(90);
      j["p99"] = h.percentile(99);
      json::Value& counts = j["counts"];
      counts = json::Value::array();
      for (std::uint64_t c : h.buckets()) counts.push_back(c);
    }
  }
  return out;
}

const PointResult& SweepResult::at_label(const std::string& label) const {
  for (const auto& p : points)
    if (p.point.label == label) return p;
  ZMAIL_ASSERT_MSG(false, "no sweep point with that label");
  return points.front();
}

double SweepResult::total_counter(const std::string& name) const {
  double t = 0.0;
  for (const auto& p : points) t += p.merged.counter(name);
  return t;
}

json::Value SweepResult::to_json() const {
  json::Value out = json::Value::object();
  out["base_seed"] = base_seed;
  out["replicas"] = static_cast<std::uint64_t>(replicas);
  out["threads"] = static_cast<std::uint64_t>(threads);
  out["wall_seconds"] = wall_seconds;
  const double events = total_counter("events");
  if (events > 0 && wall_seconds > 0)
    out["events_per_second"] = events / wall_seconds;
  json::Value& pts = out["points"];
  pts = json::Value::array();
  for (const auto& p : points) {
    json::Value j = json::Value::object();
    j["label"] = p.point.label;
    if (!p.point.params.empty()) {
      json::Value& pr = j["params"];
      for (const auto& [k, v] : p.point.params) pr[k] = v;
    }
    j["replicas"] = static_cast<std::uint64_t>(p.replicas);
    j["replica_seconds"] = p.replica_seconds;
    j["metrics"] = p.merged.to_json();
    pts.push_back(std::move(j));
  }
  return out;
}

SweepResult run(const std::vector<Point>& grid, const SweepOptions& options,
                const ReplicaFn& fn) {
  ZMAIL_ASSERT(options.replicas >= 1 && !grid.empty());
  const std::size_t n_points = grid.size();
  const std::size_t n_tasks = n_points * options.replicas;

  struct Slot {
    MetricBag bag;
    double seconds = 0;
  };
  std::vector<Slot> slots(n_tasks);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t actual_threads = options.threads;
  {
    util::ThreadPool pool(options.threads);
    actual_threads = pool.size();
    pool.parallel_for(n_tasks, [&](std::size_t task) {
      const std::size_t point = task / options.replicas;
      const std::size_t replica = task % options.replicas;
      const auto r0 = std::chrono::steady_clock::now();
      slots[task].bag =
          fn(grid[point], derive_seed(options.base_seed, point, replica),
             replica);
      slots[task].seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
              .count();
    });
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SweepResult out;
  out.wall_seconds = wall;
  out.threads = actual_threads;
  out.replicas = options.replicas;
  out.base_seed = options.base_seed;
  out.points.reserve(n_points);
  for (std::size_t p = 0; p < n_points; ++p) {
    PointResult pr;
    pr.point = grid[p];
    pr.replicas = options.replicas;
    // Fixed reduction order: replica 0, 1, 2, ... — this is what makes the
    // merged statistics independent of the thread count.
    for (std::size_t r = 0; r < options.replicas; ++r) {
      const Slot& s = slots[p * options.replicas + r];
      pr.merged.merge(s.bag);
      pr.replica_seconds += s.seconds;
    }
    out.points.push_back(std::move(pr));
  }
  return out;
}

SweepResult run(const Point& point, const SweepOptions& options,
                const ReplicaFn& fn) {
  return run(std::vector<Point>{point}, options, fn);
}

}  // namespace zmail::sweep
