# Empty dependencies file for bench_e1_spammer_economics.
# This may be replaced when dependencies are built.
