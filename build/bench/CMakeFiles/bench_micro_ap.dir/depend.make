# Empty dependencies file for bench_micro_ap.
# This may be replaced when dependencies are built.
