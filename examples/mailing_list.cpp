// Mailing lists under Zmail (paper Section 5): the distributor fronts one
// e-penny per subscriber per post, and the receivers' ISPs automatically
// acknowledge, returning each e-penny.  Dead subscribers stop acknowledging
// and are pruned, keeping the subscriber database clean.
//
//   ./mailing_list
#include <cstdio>

#include "core/mailing_list.hpp"
#include "util/table.hpp"

using namespace zmail;

int main() {
  core::ZmailParams params;
  params.n_isps = 4;
  params.users_per_isp = 300;
  params.initial_user_balance = 2'000;
  params.default_daily_limit = 5'000;
  params.record_inboxes = false;  // 1000 subscribers: keep memory flat
  core::ZmailSystem sys(params, 13);

  const net::EmailAddress distributor = net::make_user_address(0, 0);
  core::MailingList list(sys, distributor, "zmail-announce",
                         /*prune_after=*/2);

  // 999 subscribers spread over the ISPs; the last 100 are "dead" mailboxes
  // simulated as users of a non-compliant... no: dead = deactivated later.
  for (std::size_t k = 1; k < 1000; ++k)
    list.subscribe(net::make_user_address(k % 4, (k / 4) % 300));

  std::printf("list '%s': %zu subscribers, distributor %s\n\n",
              "zmail-announce", list.active_subscribers(),
              distributor.str().c_str());

  Table table({"post", "copies sent", "acks back (cumulative)",
               "net e-penny cost", "distributor balance"});
  const EPenny start_balance = sys.isp(0).user(0).balance;
  for (int post = 1; post <= 3; ++post) {
    const std::size_t copies =
        list.post("issue #" + std::to_string(post), "news of the week");
    sys.run_for(2 * sim::kHour);  // let mail + acks flow
    list.reconcile_and_prune();
    std::uint64_t acks = 0;
    for (const auto& sub : list.subscribers()) acks += sub.acks_received;
    table.add_row({Table::num(std::int64_t{post}),
                   Table::num(std::uint64_t{copies}), Table::num(acks),
                   Table::num(list.net_epenny_cost()),
                   Table::num(sys.isp(0).user(0).balance)});
  }
  table.print("acknowledgment economics (paper Section 5)");

  std::printf("\ndistributor started with %lld e-pennies, has %lld: net %+lld\n",
              static_cast<long long>(start_balance),
              static_cast<long long>(sys.isp(0).user(0).balance),
              static_cast<long long>(sys.isp(0).user(0).balance -
                                     start_balance));
  std::printf("every e-penny fronted for a post came back via automatic "
              "acknowledgments.\n");
  return 0;
}
