# Empty dependencies file for bench_a2_baseline_matrix.
# This may be replaced when dependencies are built.
