#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace zmail::trace {

namespace {

constexpr char kMagic[4] = {'Z', 'T', 'R', 'C'};
constexpr std::uint32_t kBinaryVersion = 1;

// Hand-rolled big-endian helpers: zmail_trace sits below zmail_crypto in
// the dependency order, so it cannot use crypto::ByteWriter.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}
void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Cursor {
  const std::string& data;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (pos + n > data.size()) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t get_u16() {
    if (!need(2)) return 0;
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + pos);
    pos += 2;
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  }
  std::uint32_t get_u32() {
    const std::uint32_t hi = get_u16();
    const std::uint32_t lo = get_u16();
    return (hi << 16) | lo;
  }
  std::uint64_t get_u64() {
    const std::uint64_t hi = get_u32();
    const std::uint64_t lo = get_u32();
    return (hi << 32) | lo;
  }
  std::string get_str() {
    const std::uint32_t n = get_u32();
    if (!need(n)) return {};
    std::string s = data.substr(pos, n);
    pos += n;
    return s;
  }
};

bool write_all(const std::string& path, const std::string& bytes,
               std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  if (!f) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool read_all(const std::string& path, std::string* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

void append_raw_args(json::Value& args, const TraceEvent& ev) {
  args["seq"] = ev.seq;
  args["wall_ns"] = ev.wall_ns;
  args["id"] = ev.id;
  args["arg0"] = ev.arg0;
  args["arg1"] = static_cast<std::uint64_t>(ev.arg1);
  args["host"] = static_cast<std::uint64_t>(ev.host);
  args["type"] = static_cast<std::uint64_t>(ev.type);
  args["phase"] = static_cast<std::uint64_t>(ev.phase);
}

std::string id_string(TraceId id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

bool export_chrome(const std::string& path,
                   const std::vector<TraceEvent>& events,
                   const std::vector<LogRecord>& logs, std::string* error) {
  json::Value root = json::Value::object();
  root["displayTimeUnit"] = "ms";
  json::Value arr = json::Value::array();

  for (const auto& ev : events) {
    json::Value e = json::Value::object();
    e["name"] = ev_name(static_cast<Ev>(ev.type));
    e["cat"] = "zmail";
    const auto phase = static_cast<Phase>(ev.phase);
    if (phase == Phase::kInstant) {
      e["ph"] = "i";
      e["s"] = "t";
    } else if (ev.id != 0) {
      // Async span: events for one message land on one Perfetto track even
      // though begin and end happen on different hosts.
      e["ph"] = (phase == Phase::kBegin) ? "b" : "e";
      e["id"] = id_string(ev.id);
    } else {
      e["ph"] = (phase == Phase::kBegin) ? "B" : "E";
    }
    e["ts"] = ev.sim_us;
    e["pid"] = static_cast<std::uint64_t>(ev.host);
    e["tid"] = static_cast<std::uint64_t>(ev.host);
    json::Value args = json::Value::object();
    append_raw_args(args, ev);
    e["args"] = std::move(args);
    arr.push_back(std::move(e));
  }

  for (const auto& rec : logs) {
    json::Value e = json::Value::object();
    e["name"] = "log:" + rec.tag;
    e["cat"] = "zmail.log";
    e["ph"] = "i";
    e["s"] = "t";
    e["ts"] = rec.ev.sim_us;
    e["pid"] = static_cast<std::uint64_t>(rec.ev.host);
    e["tid"] = static_cast<std::uint64_t>(rec.ev.host);
    json::Value args = json::Value::object();
    append_raw_args(args, rec.ev);
    args["tag"] = rec.tag;
    args["text"] = rec.text;
    e["args"] = std::move(args);
    arr.push_back(std::move(e));
  }

  root["traceEvents"] = std::move(arr);
  return json::write_file(path, root, error);
}

bool export_binary(const std::string& path,
                   const std::vector<TraceEvent>& events,
                   const std::vector<LogRecord>& logs, std::string* error) {
  std::string out;
  out.reserve(16 + events.size() * 48 + logs.size() * 96);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kBinaryVersion);
  put_u64(out, events.size());
  for (const auto& ev : events) {
    put_u64(out, ev.seq);
    put_u64(out, static_cast<std::uint64_t>(ev.sim_us));
    put_u64(out, ev.wall_ns);
    put_u64(out, ev.id);
    put_u64(out, ev.arg0);
    put_u32(out, ev.arg1);
    put_u16(out, ev.host);
    out.push_back(static_cast<char>(ev.type));
    out.push_back(static_cast<char>(ev.phase));
  }
  put_u64(out, logs.size());
  for (const auto& rec : logs) {
    put_u64(out, rec.ev.seq);
    put_u64(out, static_cast<std::uint64_t>(rec.ev.sim_us));
    put_u64(out, rec.ev.wall_ns);
    put_u64(out, rec.ev.id);
    put_u64(out, rec.ev.arg0);
    put_str(out, rec.tag);
    put_str(out, rec.text);
  }
  return write_all(path, out, error);
}

bool export_auto(const std::string& path,
                 const std::vector<TraceEvent>& events,
                 const std::vector<LogRecord>& logs, std::string* error) {
  const bool json_ext =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return json_ext ? export_chrome(path, events, logs, error)
                  : export_binary(path, events, logs, error);
}

bool export_current(const std::string& path, std::string* error) {
  return export_auto(path, collect(), collect_logs(), error);
}

namespace {

bool load_binary(const std::string& data, std::vector<TraceEvent>* events,
                 std::vector<LogRecord>* logs, std::string* error) {
  Cursor c{data, sizeof(kMagic)};
  const std::uint32_t version = c.get_u32();
  if (version != kBinaryVersion) {
    if (error) *error = "unsupported ZTRC version";
    return false;
  }
  const std::uint64_t n = c.get_u64();
  for (std::uint64_t i = 0; i < n && c.ok; ++i) {
    TraceEvent ev;
    ev.seq = c.get_u64();
    ev.sim_us = static_cast<std::int64_t>(c.get_u64());
    ev.wall_ns = c.get_u64();
    ev.id = c.get_u64();
    ev.arg0 = c.get_u64();
    ev.arg1 = c.get_u32();
    ev.host = c.get_u16();
    if (!c.need(2)) break;
    ev.type = static_cast<std::uint8_t>(data[c.pos++]);
    ev.phase = static_cast<std::uint8_t>(data[c.pos++]);
    if (c.ok) events->push_back(ev);
  }
  if (logs != nullptr && c.ok) {
    const std::uint64_t nl = c.get_u64();
    for (std::uint64_t i = 0; i < nl && c.ok; ++i) {
      LogRecord rec;
      rec.ev.seq = c.get_u64();
      rec.ev.sim_us = static_cast<std::int64_t>(c.get_u64());
      rec.ev.wall_ns = c.get_u64();
      rec.ev.id = c.get_u64();
      rec.ev.arg0 = c.get_u64();
      rec.ev.type = static_cast<std::uint8_t>(Ev::kLog);
      rec.tag = c.get_str();
      rec.text = c.get_str();
      if (c.ok) logs->push_back(std::move(rec));
    }
  }
  if (!c.ok) {
    if (error) *error = "truncated ZTRC file";
    return false;
  }
  return true;
}

bool load_chrome(const std::string& data, std::vector<TraceEvent>* events,
                 std::vector<LogRecord>* logs, std::string* error) {
  const auto doc = json::parse(data, error);
  if (!doc) return false;
  const json::Value* arr = doc->find("traceEvents");
  if (arr == nullptr || arr->kind() != json::Value::Kind::kArray) {
    if (error) *error = "missing traceEvents array";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const json::Value& e = arr->at(i);
    const json::Value* args = e.find("args");
    if (args == nullptr) continue;
    TraceEvent ev;
    const auto u64 = [&](const char* key, std::uint64_t dflt = 0) {
      const json::Value* v = args->find(key);
      return (v != nullptr && v->is_number()) ? v->as_uint64() : dflt;
    };
    ev.seq = u64("seq");
    ev.wall_ns = u64("wall_ns");
    ev.id = u64("id");
    ev.arg0 = u64("arg0");
    ev.arg1 = static_cast<std::uint32_t>(u64("arg1"));
    ev.host = static_cast<std::uint16_t>(u64("host", kNoHost));
    ev.type = static_cast<std::uint8_t>(u64("type"));
    ev.phase = static_cast<std::uint8_t>(u64("phase"));
    const json::Value* ts = e.find("ts");
    if (ts != nullptr && ts->is_number()) ev.sim_us = ts->as_int64();
    const json::Value* text = args->find("text");
    if (text != nullptr) {
      if (logs != nullptr) {
        LogRecord rec;
        rec.ev = ev;
        rec.ev.type = static_cast<std::uint8_t>(Ev::kLog);
        const json::Value* tag = args->find("tag");
        if (tag != nullptr) rec.tag = tag->as_string();
        rec.text = text->as_string();
        logs->push_back(std::move(rec));
      }
    } else {
      events->push_back(ev);
    }
  }
  return true;
}

}  // namespace

bool load(const std::string& path, std::vector<TraceEvent>* events,
          std::vector<LogRecord>* logs, std::string* error) {
  std::string data;
  if (!read_all(path, &data, error)) return false;
  events->clear();
  if (logs != nullptr) logs->clear();
  bool ok;
  if (data.size() >= 4 && std::memcmp(data.data(), kMagic, 4) == 0)
    ok = load_binary(data, events, logs, error);
  else
    ok = load_chrome(data, events, logs, error);
  if (!ok) return false;
  std::sort(events->begin(), events->end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return true;
}

}  // namespace zmail::trace
