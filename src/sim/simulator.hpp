// Discrete-event simulator: a priority queue of timestamped callbacks.
//
// The AP scheduler models *untimed* nondeterministic interleaving (good for
// protocol safety properties); this simulator models *timed* behaviour —
// network latency, the 10-minute snapshot quiesce of Section 4.4, daily
// `sent` resets, monthly reconciliation — for the quantitative experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace zmail::sim {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  // Schedule `fn` to run at absolute time `at` (>= now).  Ties break in
  // insertion order, so the run is deterministic.
  void schedule_at(SimTime at, EventFn fn);
  // Schedule `fn` after a relative delay (>= 0).
  void schedule_after(Duration delay, EventFn fn);

  // Schedule `fn` every `period`, starting at `first` (defaults to one
  // period from now).  The callback receives no arguments; cancel by
  // returning false from the supplied predicate variant.
  void schedule_every(Duration period, std::function<bool()> fn,
                      SimTime first = -1);

  // Run until the queue drains or `until` (inclusive) is passed.
  // Returns the number of events executed.
  std::uint64_t run(SimTime until = INT64_MAX);

  // Execute exactly one event; returns false if the queue is empty or the
  // next event is after `until`.
  bool step(SimTime until = INT64_MAX);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct RecurringTask {
    Duration period;
    std::function<bool()> fn;
  };
  void run_recurring(const std::shared_ptr<RecurringTask>& task);

  struct Event {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace zmail::sim
