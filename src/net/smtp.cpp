#include "net/smtp.hpp"

#include <cctype>
#include <cstdlib>

#include "util/assert.hpp"

namespace zmail::net {

namespace {

// Case-insensitive prefix match; returns the remainder after the prefix.
std::optional<std::string> strip_prefix_ci(const std::string& line,
                                           std::string_view prefix) {
  if (line.size() < prefix.size()) return std::nullopt;
  for (std::size_t i = 0; i < prefix.size(); ++i)
    if (std::toupper(static_cast<unsigned char>(line[i])) !=
        std::toupper(static_cast<unsigned char>(prefix[i])))
      return std::nullopt;
  return line.substr(prefix.size());
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

SmtpServerSession::SmtpServerSession(std::string server_domain,
                                     DeliverFn deliver)
    : domain_(std::move(server_domain)), deliver_(std::move(deliver)) {
  ZMAIL_ASSERT(deliver_ != nullptr);
}

SmtpReply SmtpServerSession::greeting() const {
  return {220, domain_ + " Simple Mail Transfer Service Ready"};
}

void SmtpServerSession::reset_transaction() {
  envelope_from_ = {};
  envelope_to_.clear();
  data_lines_.clear();
  data_bytes_ = 0;
  if (state_ != State::kConnected) state_ = State::kGreeted;
}

SmtpReply SmtpServerSession::consume_line(const std::string& line) {
  if (state_ == State::kData) {
    if (line == ".") {
      EmailMessage msg =
          parse_rfc822(envelope_from_, envelope_to_, data_lines_);
      deliver_(msg);
      ++accepted_;
      reset_transaction();
      return {250, "OK"};
    }
    // Reverse dot-stuffing: a leading ".." becomes ".".
    if (line.size() >= 2 && line[0] == '.' && line[1] == '.')
      data_lines_.push_back(line.substr(1));
    else
      data_lines_.push_back(line);
    data_bytes_ += line.size() + 2;
    if (max_size_ > 0 && data_bytes_ > max_size_) {
      reset_transaction();
      return {552, "Message exceeds maximum size"};
    }
    return {0, ""};
  }
  return handle_command(line);
}

SmtpReply SmtpServerSession::handle_command(const std::string& line) {
  if (auto rest = strip_prefix_ci(line, "HELO");
      rest || (rest = strip_prefix_ci(line, "EHLO"))) {
    if (trim(*rest).empty()) return {501, "Syntax: HELO hostname"};
    reset_transaction();
    state_ = State::kGreeted;
    return {250, domain_ + " Hello " + trim(*rest)};
  }
  if (auto rest = strip_prefix_ci(line, "MAIL FROM:")) {
    if (state_ == State::kConnected) return {503, "Polite people say HELO first"};
    if (state_ != State::kGreeted) return {503, "Nested MAIL command"};
    // Optional RFC-1870 SIZE parameter: "MAIL FROM:<a@b> SIZE=12345".
    std::string spec = trim(*rest);
    const std::size_t space = spec.find(' ');
    if (space != std::string::npos) {
      const std::string param = trim(spec.substr(space + 1));
      spec = spec.substr(0, space);
      if (auto size = strip_prefix_ci(param, "SIZE=")) {
        char* end = nullptr;
        const unsigned long long declared =
            std::strtoull(size->c_str(), &end, 10);
        if (end == size->c_str() || *end != '\0')
          return {501, "Bad SIZE parameter"};
        if (max_size_ > 0 && declared > max_size_)
          return {552, "Message size exceeds fixed maximum"};
      } else {
        return {501, "Unrecognized MAIL parameter"};
      }
    }
    auto addr = parse_path(spec);
    if (!addr) return {501, "Syntax error in MAIL FROM path"};
    envelope_from_ = *addr;
    state_ = State::kMailFrom;
    return {250, "OK"};
  }
  if (auto rest = strip_prefix_ci(line, "RCPT TO:")) {
    if (state_ != State::kMailFrom && state_ != State::kRcptTo)
      return {503, "Need MAIL command first"};
    auto addr = parse_path(trim(*rest));
    if (!addr) return {501, "Syntax error in RCPT TO path"};
    if (verify_ && addr->domain == domain_ && !verify_(*addr))
      return {550, "No such user here"};
    envelope_to_.push_back(*addr);
    state_ = State::kRcptTo;
    return {250, "OK"};
  }
  if (auto rest = strip_prefix_ci(line, "VRFY")) {
    const std::string who = trim(*rest);
    if (who.empty()) return {501, "VRFY needs an address"};
    const auto addr = parse_address(who);
    if (!addr) return {501, "Syntax error in address"};
    if (!verify_) return {252, "Cannot VRFY user, but will accept message"};
    return verify_(*addr) ? SmtpReply{250, addr->str()}
                          : SmtpReply{550, "No such user here"};
  }
  if (strip_prefix_ci(line, "HELP")) {
    return {214, "Commands: HELO MAIL RCPT DATA RSET NOOP VRFY HELP QUIT"};
  }
  if (strip_prefix_ci(line, "DATA") && trim(line).size() == 4) {
    if (state_ != State::kRcptTo)
      return {503, "Need RCPT before DATA"};
    state_ = State::kData;
    return {354, "Start mail input; end with <CRLF>.<CRLF>"};
  }
  if (strip_prefix_ci(line, "RSET") && trim(line).size() == 4) {
    reset_transaction();
    return {250, "OK"};
  }
  if (strip_prefix_ci(line, "NOOP")) return {250, "OK"};
  if (strip_prefix_ci(line, "QUIT")) {
    quit_ = true;
    return {221, domain_ + " Service closing transmission channel"};
  }
  return {500, "Syntax error, command unrecognized"};
}

std::vector<std::string> smtp_client_script(const EmailMessage& msg,
                                            const std::string& client_domain) {
  std::vector<std::string> lines;
  lines.push_back("HELO " + client_domain);
  lines.push_back("MAIL FROM:<" + msg.from.str() + ">");
  for (const auto& r : msg.to) lines.push_back("RCPT TO:<" + r.str() + ">");
  lines.push_back("DATA");

  // Render headers + body as individual lines with dot-stuffing.
  std::string text = msg.to_rfc822();
  std::string current;
  auto flush = [&]() {
    if (!current.empty() && current[0] == '.')
      lines.push_back("." + current);  // dot-stuffing
    else
      lines.push_back(current);
    current.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      flush();
      ++i;
    } else if (text[i] == '\n') {
      flush();
    } else {
      current += text[i];
    }
  }
  if (!current.empty()) flush();

  lines.push_back(".");
  lines.push_back("QUIT");
  return lines;
}

SmtpTransferResult smtp_transfer(const EmailMessage& msg,
                                 const std::string& client_domain,
                                 SmtpServerSession& server) {
  SmtpTransferResult result;
  const SmtpReply greet = server.greeting();
  result.bytes_server_to_client += greet.line().size();
  if (!greet.positive()) {
    result.first_error_code = greet.code;
    return result;
  }

  bool data_accepted = false;
  for (const auto& line : smtp_client_script(msg, client_domain)) {
    result.bytes_client_to_server += line.size() + 2;  // + CRLF
    const SmtpReply reply = server.consume_line(line);
    if (reply.code == 0) continue;  // swallowed data line
    result.bytes_server_to_client += reply.line().size();
    if (!reply.positive()) {
      if (result.first_error_code == 0) result.first_error_code = reply.code;
      return result;
    }
    if (line == "." && reply.code == 250) data_accepted = true;
  }
  result.accepted = data_accepted;
  return result;
}

EmailMessage parse_rfc822(const EmailAddress& envelope_from,
                          const std::vector<EmailAddress>& envelope_to,
                          const std::vector<std::string>& lines) {
  EmailMessage msg;
  msg.from = envelope_from;
  msg.to = envelope_to;
  std::size_t i = 0;
  for (; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) {
      ++i;
      break;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // tolerate malformed headers
    std::string key = trim(line.substr(0, colon));
    std::string value = trim(line.substr(colon + 1));
    // From:/To: duplicate the envelope in this simulation; keep the rest.
    if (key == "From" || key == "To") continue;
    msg.headers.emplace_back(std::move(key), std::move(value));
  }
  std::string body;
  for (; i < lines.size(); ++i) {
    body += lines[i];
    body += '\n';
  }
  if (!body.empty() && body.back() == '\n') body.pop_back();
  msg.body = std::move(body);
  return msg;
}

}  // namespace zmail::net
