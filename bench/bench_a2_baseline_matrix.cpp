// A2 — The baseline comparison matrix (paper Section 2, all of it).
//
// Every approach the paper surveys, measured on the same synthetic mail
// stream, side by side: header filtering (blacklist), content filtering
// (naive Bayes), human challenge-response, computational proof-of-work,
// receiver-triggered payment (SHRED), and Zmail.  The columns are the
// paper's own evaluation axes: how much spam still reaches the inbox, how
// much legitimate mail is lost, what the receiver and the legitimate
// sender pay, and whether the defence survives the evasion strategy the
// paper names for it.
#include "baselines/bayes.hpp"
#include "baselines/blacklist.hpp"
#include "baselines/challenge.hpp"
#include "baselines/pow_mail.hpp"
#include "baselines/shred.hpp"
#include "bench_common.hpp"
#include "econ/spammer.hpp"
#include "util/table.hpp"
#include "workload/corpus.hpp"

using namespace zmail;

namespace {

struct Row {
  std::string approach;
  double spam_delivered = 0;   // fraction of spam reaching the inbox
  double legit_lost = 0;       // fraction of legitimate mail lost
  double receiver_seconds_per_10k_spam = 0;
  std::string legit_sender_cost;
  std::string evasion;  // the paper's named evasion and whether it works
};

constexpr int kSpam = 3'000;
constexpr int kLegit = 3'000;  // half plain ham, half newsletters

Row run_blacklist(workload::CorpusGenerator& corpus, Rng rng) {
  (void)corpus;
  // Spam arrives from 40 sending domains; the blacklist knows the 20 that
  // were already reported.  Spammers rotate: half of the volume comes from
  // fresh (unlisted) domains — the paper: "spammers can use well-known
  // ISPs or some hacked computers".
  baselines::Blacklist bl;
  for (int d = 0; d < 20; ++d)
    bl.add_domain("spammer" + std::to_string(d) + ".example");
  int delivered = 0;
  for (int i = 0; i < kSpam; ++i) {
    const int domain = static_cast<int>(rng.next_below(40));
    const net::EmailAddress sender{
        "x", "spammer" + std::to_string(domain) + ".example"};
    if (!bl.blocked(sender)) ++delivered;
  }
  Row row;
  row.approach = "blacklist";
  row.spam_delivered = static_cast<double>(delivered) / kSpam;
  row.legit_lost = 0.0;  // (collateral listing not modelled here)
  row.legit_sender_cost = "free";
  row.evasion = "domain rotation: works";
  return row;
}

Row run_content_filter(workload::CorpusGenerator& corpus, Rng rng,
                       double evade_strength) {
  (void)rng;
  baselines::NaiveBayesFilter filter;
  for (int i = 0; i < 500; ++i) {
    filter.train(corpus.spam_body(), true);
    filter.train(corpus.ham_body(), false);
  }
  int spam_delivered = 0, legit_lost = 0;
  for (int i = 0; i < kSpam; ++i)
    if (!filter.is_spam(corpus.evade(corpus.spam_body(), evade_strength)))
      ++spam_delivered;
  for (int i = 0; i < kLegit; ++i) {
    const std::string body =
        i % 2 == 0 ? corpus.ham_body() : corpus.newsletter_body();
    if (filter.is_spam(body)) ++legit_lost;
  }
  Row row;
  row.approach = evade_strength > 0 ? "content filter (evaded)"
                                    : "content filter";
  row.spam_delivered = static_cast<double>(spam_delivered) / kSpam;
  row.legit_lost = static_cast<double>(legit_lost) / kLegit;
  row.legit_sender_cost = "free";
  row.evasion = evade_strength > 0 ? "misspelling: works" : "-";
  return row;
}

Row run_challenge_response(Rng rng) {
  baselines::ChallengeParams p;
  baselines::ChallengeResponse cr(p, rng);
  Rng addr_rng(99);
  int spam_delivered = 0, legit_lost = 0;
  for (int i = 0; i < kSpam; ++i) {
    const net::EmailAddress sender{
        "s" + std::to_string(addr_rng.next_below(1'000)), "bot.example"};
    if (cr.process(sender, true)) ++spam_delivered;
  }
  for (int i = 0; i < kLegit; ++i) {
    const net::EmailAddress sender{
        "u" + std::to_string(addr_rng.next_below(400)), "friends.example"};
    if (!cr.process(sender, false)) ++legit_lost;
  }
  Row row;
  row.approach = "challenge-response";
  row.spam_delivered = static_cast<double>(spam_delivered) / kSpam;
  row.legit_lost = static_cast<double>(legit_lost) / kLegit;
  // Receiver effort here is the *senders'* human effort answering; the
  // paper also counts the annoyance ("perceived as rude").
  row.receiver_seconds_per_10k_spam = 0;
  row.legit_sender_cost =
      Table::num(cr.stats().human_seconds /
                     static_cast<double>(kLegit),
                 1) +
      " s human";
  row.evasion = "whitelist forgery possible";
  return row;
}

Row run_pow() {
  // Difficulty 20 ~ 1s of 2004-era CPU per message.  The spammer's botnet
  // has a fixed hash budget; a legitimate sender pays the CPU too.
  baselines::PowMailer mailer(baselines::PowMailParams{20, 1e6});
  const double spam_daily_capacity = mailer.max_daily_rate();  // per CPU
  // A 100-CPU botnet vs a 1M-message-per-day campaign target:
  const double fraction_sendable =
      std::min(1.0, 100.0 * spam_daily_capacity / 1e6);
  Row row;
  row.approach = "proof-of-work";
  row.spam_delivered = fraction_sendable;  // what the botnet can still push
  row.legit_lost = 0.0;
  row.legit_sender_cost = Table::num(
      mailer.expected_attempts() / 1e6, 1) + " s CPU";
  row.evasion = "botnets scale the CPU";
  return row;
}

Row run_shred(Rng rng) {
  baselines::ShredParams p;  // default 30% report rate
  baselines::ShredScheme shred(p, rng);
  for (int i = 0; i < kSpam; ++i) shred.process(true);
  for (int i = 0; i < kLegit; ++i) shred.process(false);
  Row row;
  row.approach = "SHRED/Vanquish";
  // All spam is delivered; deterrence is the expected fine only.
  row.spam_delivered = 1.0;
  row.legit_lost = 0.0;
  row.receiver_seconds_per_10k_spam =
      shred.stats().receiver_human_seconds * 10'000.0 / kSpam;
  row.legit_sender_cost = "free (unless reported)";
  row.evasion = "ISP collusion zeroes the fine";
  return row;
}

Row run_zmail() {
  // Spam volume under Zmail: only campaigns profitable at $0.01/message
  // survive.  With the standard campaign mix (1e-5 response), that is
  // none of the bulk volume; the residue is targeted advertising (2%).
  Row row;
  row.approach = "Zmail";
  econ::Campaign bulk;
  row.spam_delivered =
      econ::evaluate(bulk, econ::zmail_regime()).profit.dollars() > 0
          ? 1.0
          : 0.02;  // the economically rational targeted residue
  row.legit_lost = 0.0;  // no classification, no false positives
  row.receiver_seconds_per_10k_spam = 0;
  row.legit_sender_cost = "1 e-penny, returned on receipt of replies";
  row.evasion = "none: price is content-independent";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("a2_baseline_matrix", argc, argv);
  std::printf("=== A2: every Section-2 baseline on one mail stream ===\n");
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(777));

  std::vector<Row> rows;
  rows.push_back(run_blacklist(corpus, Rng(1)));
  rows.push_back(run_content_filter(corpus, Rng(2), 0.0));
  rows.push_back(run_content_filter(corpus, Rng(3), 0.9));
  rows.push_back(run_challenge_response(Rng(4)));
  rows.push_back(run_pow());
  rows.push_back(run_shred(Rng(5)));
  rows.push_back(run_zmail());

  Table t({"approach", "spam reaching inbox", "legit mail lost",
           "receiver effort (s/10k spam)", "legit sender cost",
           "named evasion"});
  for (const Row& r : rows) {
    t.add_row({r.approach, Table::pct(r.spam_delivered, 1),
               Table::pct(r.legit_lost, 1),
               Table::num(r.receiver_seconds_per_10k_spam, 0),
               r.legit_sender_cost, r.evasion});
  }
  t.print("A2  baseline comparison matrix (3k spam + 3k legit messages)");

  const Row& bl = rows[0];
  const Row& cf = rows[1];
  const Row& cf_evaded = rows[2];
  const Row& cr = rows[3];
  const Row& shred = rows[5];
  const Row& zmail = rows[6];

  bench::check(bl.spam_delivered > 0.4,
               "blacklists leak heavily once spammers rotate domains");
  bench::check(cf.legit_lost > 0.2,
               "content filtering loses legitimate bulk mail (newsletters)");
  bench::check(cf_evaded.spam_delivered > cf.spam_delivered + 0.25,
               "misspelling evasion reopens the content filter");
  bench::check(cr.legit_lost > 0.01,
               "challenge-response drops legit mail from non-responders");
  bench::check(shred.spam_delivered == 1.0 &&
                   shred.receiver_seconds_per_10k_spam > 1'000,
               "SHRED delivers all spam and burns receiver time");
  bench::check(zmail.spam_delivered < 0.05 && zmail.legit_lost == 0.0,
               "Zmail: spam collapses, zero legitimate mail lost");
  return harness.finish();
}
