file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_replay_resistance.dir/bench_e11_replay_resistance.cpp.o"
  "CMakeFiles/bench_e11_replay_resistance.dir/bench_e11_replay_resistance.cpp.o.d"
  "bench_e11_replay_resistance"
  "bench_e11_replay_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_replay_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
