// R3 — federation chaos sweep: durable member banks under a hostile
// inter-bank plane.
//
// The Section 5 collaborating-banks extension turns the bank into a
// federation whose column exchange and netted clearing ride real
// datagrams.  This bench attacks exactly that plane: a deterministic
// FaultInjector drops/duplicates/corrupts the settlement wires (mail
// itself is left alone — the facade's paid-mail plane is r1's subject),
// cuts bank pairs apart, and crashes member banks outright mid-round,
// while every bank's WAL + checkpoint pair and the RetryPolicy-backed
// wires have to bring every settlement round to a close with the books
// intact.
//
// Regenerates:
//   R3.a  bank-count x fault-rate grid: settlement throughput and round
//         latency at 1/2/4/8 banks, every round closed, zero violations
//   R3.b  a partition between two bank hosts spanning a round opening:
//         clearing wires retransmit across the heal, the round completes
//   R3.c  member-bank crashes mid-round (store-backed rebuild from
//         snapshot + WAL replay): the round completes after recovery,
//         the federation drains idle, zero conservation violations
//
// `--audit` additionally runs the FederationAuditor *continuously*
// (every 10 simulated minutes) inside each replica instead of only at
// the end.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/federated_system.hpp"
#include "core/invariants.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "net/msg_type.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

// The hardened federated configuration: durable per-bank stores and
// retrying inter-bank wires.  store.dir is filled per replica.
core::ZmailParams federated_params() {
  core::ZmailParams p;
  p.n_isps = 8;
  p.users_per_isp = 4;
  p.initial_user_balance = 10'000;
  p.default_daily_limit = 100'000;
  p.record_inboxes = false;
  p.retry.enabled = true;  // ISP<->bank and bank<->bank wires retransmit
  p.store.enabled = true;  // every member bank gets a WAL + checkpoint pair
  return p;
}

// The settlement plane: every datagram type the federation's money flow
// rides on.  Fault rates are restricted to these so the chaos lands on
// the subsystem under test (the facade's raw-mail plane has no ARQ — its
// hardening is ZmailSystem's and is swept by bench_r1).
std::vector<net::MsgType> settlement_plane() {
  return {net::kMsgBuy,
          net::kMsgBuyReply,
          net::kMsgSell,
          net::kMsgSellReply,
          net::kMsgRequest,
          net::kMsgReply,
          net::MsgType::intern("fed-columns"),
          net::MsgType::intern("fed-columns-ack"),
          net::MsgType::intern("fed-clearing"),
          net::MsgType::intern("fed-clearing-ack")};
}

struct Scenario {
  net::FaultPlan plan;
  std::size_t banks = 4;
  int rounds = 3;           // settlement rounds driven
  int sends_per_round = 30; // one cross-ISP email per simulated minute
  int crash_round = -1;     // crash `crash_bank` right after this round opens
  std::size_t crash_bank = 1;
  int crash_round2 = -1;    // optional second, staggered crash
  std::size_t crash_bank2 = 2;
  bool audit_continuous = false;
  std::string store_slug;   // unique store dir per (point, seed, replica)
};

// One replica: `rounds` settlement rounds, each preceded by a chunk of
// cross-ISP mail with bank trading, all under the scenario's fault plan.
// Each round is timed from start_snapshot() to the global round close, so
// crashed banks' recovery latency lands in the measurement.  A drain
// window (faults still injecting) must leave the federation idle.
sweep::MetricBag run_fed_chaos(const Scenario& sc, std::uint64_t seed,
                               std::size_t replica) {
  const std::string dir = "r3_store/" + sc.store_slug + "_s" +
                          std::to_string(seed) + "_r" +
                          std::to_string(replica);
  std::filesystem::remove_all(dir);
  core::ZmailParams p = federated_params();
  p.store.dir = dir;

  sweep::MetricBag bag;
  {
    core::FederatedZmailSystem sys(p, sc.banks, seed);
    sys.enable_bank_trading();

    // Independent fault stream: the same (plan, seed) replays
    // bit-identically.
    net::FaultInjector inj(sc.plan, seed ^ 0x5DEECE66Dull);
    sys.attach_faults(&inj);

    core::FederationAuditor auditor(sys);
    if (sc.audit_continuous) auditor.run_continuously(10 * sim::kMinute);

    Rng traffic(seed + 17);
    for (int r = 0; r < sc.rounds; ++r) {
      for (int i = 0; i < sc.sends_per_round; ++i) {
        const std::size_t src = traffic.next_below(p.n_isps);
        std::size_t dst = traffic.next_below(p.n_isps - 1);
        if (dst >= src) ++dst;
        sys.send_email(
            net::make_user_address(src, traffic.next_below(p.users_per_isp)),
            net::make_user_address(dst, traffic.next_below(p.users_per_isp)),
            "chaos", "m" + std::to_string(i));
        sys.run_for(sim::kMinute);
      }
      const sim::SimTime t0 = sys.now();
      sys.start_snapshot();
      // A true mid-round crash: the bank opened its round (kStartRound is
      // in its WAL), sealed its requests, and dies before the reports
      // land.  Recovery replays the WAL, re-seals, and rejoins.
      if (r == sc.crash_round)
        sys.crash_host(sys.bank_host(sc.crash_bank), 20 * sim::kMinute);
      if (r == sc.crash_round2)
        sys.crash_host(sys.bank_host(sc.crash_bank2), 20 * sim::kMinute);
      int guard = 0;
      while (sys.federation().round_open() && guard++ < 16 * 60)
        sys.run_for(sim::kMinute);
      if (!sys.federation().round_open())
        bag.stat("round_latency_min")
            .add(static_cast<double>(sys.now() - t0) /
                 static_cast<double>(sim::kMinute));
    }

    // Drain with the faults still injecting: recovery under fire.
    sys.run_for(sim::kHour);
    for (int k = 0; k < 24 && !sys.federation().idle(); ++k)
      sys.run_for(15 * sim::kMinute);
    sys.attach_faults(nullptr);

    auditor.check_now();
    if (!auditor.report().ok())
      for (const std::string& msg : auditor.report().messages)
        std::fprintf(stderr, "r3 seed=%llu: INVARIANT: %s\n",
                     static_cast<unsigned long long>(seed), msg.c_str());

    const core::FederationMetrics fm = sys.federation().metrics();
    bag.count("replica", 1);
    bag.count("rounds", static_cast<double>(fm.rounds_completed));
    bag.count("rounds_target", static_cast<double>(sc.rounds));
    bag.count("settled", static_cast<double>(fm.settlements_intra_bank +
                                             fm.settlements_cross_bank));
    bag.count("clearing_transfers", static_cast<double>(fm.clearing_transfers));
    bag.count("interbank_msgs",
              static_cast<double>(fm.interbank_messages + fm.clearing_messages +
                                  fm.interbank_acks));
    bag.count("interbank_kb", static_cast<double>(fm.interbank_bytes) / 1024.0);
    bag.count("interbank_retries", static_cast<double>(fm.interbank_retries));
    bag.count("rerequests", static_cast<double>(fm.snapshot_rerequests));
    bag.count("replays",
              static_cast<double>(fm.duplicate_trades + fm.stale_trades +
                                  fm.duplicate_interbank + fm.stale_interbank));
    bag.count("fed_violations", static_cast<double>(fm.violations_found));
    bag.count("violations", static_cast<double>(auditor.report().violations));
    bag.count("idle", sys.federation().idle() ? 1 : 0);
    bag.count("recoveries", static_cast<double>(sys.state_recoveries()));
    bag.count("sim_hours", static_cast<double>(sys.now()) /
                               static_cast<double>(sim::kHour));
    const net::FaultCounters& fc = inj.counters();
    bag.count("injected", static_cast<double>(fc.total_injected()));
    bag.count("partitioned", static_cast<double>(fc.partitioned));
    bag.count("outage_lost", static_cast<double>(fc.outage_lost));
  }
  std::filesystem::remove_all(dir);
  return bag;
}

struct SectionVerdict {
  bool closed = true;   // every driven round completed at every point
  bool drained = true;  // federation idle (no wire pending) at every point
  bool clean = true;    // zero auditor + federation violations everywhere
};

// Prints one row per sweep point and folds the acceptance booleans.
SectionVerdict print_sweep(const sweep::SweepResult& res,
                           const std::string& title) {
  Table t({"scenario", "rounds", "settled", "settle/h", "latency(m)",
           "interbank msgs", "retries", "replays", "recoveries",
           "violations"});
  SectionVerdict v;
  for (const auto& pr : res.points) {
    const auto& b = pr.merged;
    if (b.counter("rounds") != b.counter("rounds_target")) v.closed = false;
    if (b.counter("idle") != b.counter("replica")) v.drained = false;
    if (b.counter("violations") != 0 || b.counter("fed_violations") != 0)
      v.clean = false;
    const double hours = b.counter("sim_hours");
    const OnlineStats* lat = b.find_stat("round_latency_min");
    t.add_row({pr.point.label, Table::num(b.counter("rounds"), 0),
               Table::num(b.counter("settled"), 0),
               Table::num(hours > 0 ? b.counter("settled") / hours : 0, 1),
               Table::num(lat ? lat->mean() : 0.0, 1),
               Table::num(b.counter("interbank_msgs"), 0),
               Table::num(b.counter("interbank_retries"), 0),
               Table::num(b.counter("replays"), 0),
               Table::num(b.counter("recoveries"), 0),
               Table::num(b.counter("violations") +
                              b.counter("fed_violations"),
                          0)});
  }
  t.print(title);
  return v;
}

sweep::SweepOptions sweep_opts(const bench::Options& opt,
                               std::size_t replicas) {
  sweep::SweepOptions so;
  so.base_seed = opt.seed;
  so.threads = opt.threads;
  so.replicas = std::max(opt.replicas, replicas);
  return so;
}

void r3a_grid(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  struct Fault {
    const char* label;
    double drop, dup, corrupt;
  };
  const std::vector<Fault> faults =
      opt.smoke ? std::vector<Fault>{{"fault-free", 0, 0, 0},
                                     {"drop=5%", 0.05, 0, 0}}
                : std::vector<Fault>{{"fault-free", 0, 0, 0},
                                     {"drop=5%", 0.05, 0, 0},
                                     {"drop=10% dup=5% corrupt=1%", 0.10,
                                      0.05, 0.01}};
  const std::vector<std::size_t> bank_counts =
      opt.smoke ? std::vector<std::size_t>{2, 4}
                : std::vector<std::size_t>{1, 2, 4, 8};

  std::vector<sweep::Point> grid;
  for (std::size_t banks : bank_counts)
    for (std::size_t f = 0; f < faults.size(); ++f)
      grid.push_back(sweep::Point{
          "banks=" + std::to_string(banks) + " " + faults[f].label,
          {{"banks", static_cast<double>(banks)},
           {"fault", static_cast<double>(f)},
           {"idx", static_cast<double>(grid.size())}}});

  // The acceptance point must hold over >= 3 independent seeds.
  const auto so = sweep_opts(opt, opt.smoke ? 1 : 3);
  const sweep::SweepResult res = harness.run_sweep(
      "r3a_grid", grid, so,
      [&](const sweep::Point& q, std::uint64_t seed, std::size_t replica) {
        const Fault& f = faults[static_cast<std::size_t>(q.param("fault"))];
        Scenario sc;
        sc.banks = static_cast<std::size_t>(q.param("banks"));
        sc.rounds = opt.smoke ? 2 : 3;
        sc.sends_per_round = opt.smoke ? 15 : 40;
        sc.audit_continuous = opt.audit;
        sc.plan.rates.drop = f.drop;
        sc.plan.rates.duplicate = f.dup;
        sc.plan.rates.corrupt = f.corrupt;
        sc.plan.only_types = settlement_plane();
        sc.store_slug = "a" + std::to_string(
                                  static_cast<std::size_t>(q.param("idx")));
        return run_fed_chaos(sc, seed, replica);
      });

  const SectionVerdict v = print_sweep(
      res, "R3.a  bank-count x fault-rate grid (" +
               std::to_string(so.replicas) + " seed(s) per point)");
  bench::check(v.closed,
               "every settlement round closed at every bank count and rate");
  bench::check(v.drained, "no inter-bank wire left pending after the drain");
  bench::check(v.clean, "the federation auditor found zero violations");

  bool faultfree_quiet = true, injected = true;
  double msgs1 = 0, msgs2 = 0, msgs8 = 0;
  for (const auto& pr : res.points) {
    const bool fault_free = pr.point.param("fault") == 0;
    const auto& b = pr.merged;
    if (fault_free && (b.counter("interbank_retries") != 0 ||
                       b.counter("recoveries") != 0 ||
                       b.counter("replays") != 0))
      faultfree_quiet = false;
    if (!fault_free && b.counter("injected") == 0) injected = false;
    if (fault_free && pr.point.param("banks") == 1)
      msgs1 = b.counter("interbank_msgs");
    if (fault_free && pr.point.param("banks") == 2)
      msgs2 = b.counter("interbank_msgs");
    if (fault_free && pr.point.param("banks") == 8)
      msgs8 = b.counter("interbank_msgs");
  }
  bench::check(faultfree_quiet,
               "fault-free points never retransmit, replay, or recover");
  bench::check(injected, "every faulty point actually injected faults");
  if (!opt.smoke) {
    bench::check(msgs1 == 0, "a single bank exchanges no inter-bank traffic");
    bench::check(msgs8 > msgs2,
                 "inter-bank traffic grows with the bank count");
  }
}

void r3b_partition(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const int sends = opt.smoke ? 15 : 40;
  const std::size_t n_isps = federated_params().n_isps;

  const sweep::SweepResult res = harness.run_sweep(
      "r3b_partition",
      {sweep::Point{"bank0 <-> bank1 cut across a round opening", {}}},
      sweep_opts(opt, opt.smoke ? 1 : 3),
      [&](const sweep::Point&, std::uint64_t seed, std::size_t replica) {
        Scenario sc;
        sc.banks = 4;
        sc.rounds = opt.smoke ? 2 : 3;
        sc.sends_per_round = sends;
        sc.audit_continuous = opt.audit;
        // Round 0 opens at exactly `sends` minutes; cut the two banks
        // apart across it so their column/clearing wires must back off
        // and retransmit through the heal.
        const sim::SimTime open_at =
            static_cast<sim::SimTime>(sends) * sim::kMinute;
        sc.plan.partitions.push_back(
            net::Partition{static_cast<net::HostId>(n_isps + 0),
                           static_cast<net::HostId>(n_isps + 1),
                           open_at - 5 * sim::kMinute,
                           open_at + 30 * sim::kMinute});
        sc.store_slug = "b0";
        return run_fed_chaos(sc, seed, replica);
      });

  const SectionVerdict v = print_sweep(res, "R3.b  bank partition and heal");
  const auto& b = res.points.front().merged;
  bench::check(b.counter("partitioned") > 0,
               "the partition swallowed live inter-bank wires");
  bench::check(b.counter("interbank_retries") > 0,
               "clearing wires backed off and retransmitted across the heal");
  bench::check(v.closed && v.drained,
               "every round closed and drained despite the partition");
  bench::check(v.clean, "no invariant violated by the partition");
}

void r3c_bank_crash(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  std::vector<sweep::Point> grid = {
      sweep::Point{"banks=4, bank1 crashes mid-round", {{"banks", 4}}}};
  if (!opt.smoke)
    grid.push_back(sweep::Point{
        "banks=8, bank1 then bank2 crash mid-round",
        {{"banks", 8}, {"second", 1}}});

  const sweep::SweepResult res = harness.run_sweep(
      "r3c_bank_crash", grid, sweep_opts(opt, opt.smoke ? 1 : 3),
      [&](const sweep::Point& q, std::uint64_t seed, std::size_t replica) {
        Scenario sc;
        sc.banks = static_cast<std::size_t>(q.param("banks"));
        sc.rounds = opt.smoke ? 2 : 3;
        sc.sends_per_round = opt.smoke ? 15 : 40;
        sc.audit_continuous = opt.audit;
        // Crash immediately after the round opens: kStartRound is on the
        // bank's WAL, its sealed requests are in flight, and the reports
        // racing back are lost with the host.  Rebuild + replay must
        // re-seal and close the round.
        sc.crash_round = 0;
        sc.crash_bank = 1;
        if (q.param("second") != 0) {
          sc.crash_round2 = 1;
          sc.crash_bank2 = 2;
        }
        sc.store_slug = "c" + std::to_string(sc.banks);
        return run_fed_chaos(sc, seed, replica);
      });

  const SectionVerdict v =
      print_sweep(res, "R3.c  member-bank crash mid-round");
  bool recovered = true;
  for (const auto& pr : res.points) {
    const double want = 1.0 + pr.point.param("second");
    if (pr.merged.counter("recoveries") <
        want * pr.merged.counter("replica"))
      recovered = false;
  }
  bench::check(recovered,
               "every planned crash ended in a snapshot + WAL rebuild");
  bench::check(res.points.front().merged.counter("outage_lost") > 0,
               "the crashes really destroyed in-flight datagrams");
  bench::check(v.closed,
               "every interrupted round completed after recovery");
  bench::check(v.drained, "the federation drained idle after the crashes");
  bench::check(v.clean, "zero conservation violations across the crashes");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("r3_federation_chaos", argc, argv);
  std::printf("=== R3: federation chaos sweep ===\n");
  r3a_grid(harness);
  r3b_partition(harness);
  r3c_bank_crash(harness);
  std::filesystem::remove_all("r3_store");
  return harness.finish();
}
