// zmail::obs — observability layer: structured (JSON) export of the
// counters the protocol code already keeps.
//
// Nothing here adds instrumentation; it serializes what IspMetrics,
// BankMetrics, and the stats types record, in a stable machine-readable
// schema ("zmail-obs-v1") that BENCH_*.json files and the sweep harness
// embed.  Key order is fixed (struct field order / sorted names), so two
// runs of the same experiment diff cleanly.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/federated_system.hpp"
#include "core/metrics.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace zmail::obs {

// Snapshot schema version.  kV1 reproduces the original "zmail-obs-v1"
// output byte-for-byte (the BENCH_*.json baselines diff against it); kV2
// ("zmail-obs-v2") folds in the PR3 fault-recovery counters, the PR4 bank
// idempotency counters, durable-store totals, and — when the flight
// recorder is enabled — the span-derived per-stage latency breakdown.
// kV3 ("zmail-obs-v3") is kV2 plus, when the system ran with telemetry
// enabled, the recorded time series: "timeseries" (deterministic series,
// bit-identical at any shard/thread count), "timeseries_engine"
// (partition-dependent engine series), and "probes" (the default health
// rules evaluated over the run).
enum class Schema { kV1, kV2, kV3 };

// "zmail-obs-v1" / "zmail-obs-v2" / "zmail-obs-v3".
const char* schema_name(Schema v) noexcept;

json::Value to_json(const core::IspMetrics& m, Schema v = Schema::kV1);
json::Value to_json(const core::BankMetrics& m, Schema v = Schema::kV1);
json::Value to_json(const core::LegacyHostStats& s);
json::Value to_json(const OnlineStats& s);
json::Value to_json(const Histogram& h);
// Samples export summary percentiles, not raw observations (raw data can be
// millions of points; the consumers in EXPERIMENTS.md only read quantiles).
json::Value to_json(const Sample& s);

// Whole-system snapshot: aggregate + per-ISP metrics, bank metrics,
// delivery latency, network totals, conservation status.  kV2 appends the
// "store", and (when tracing is on) "trace_breakdown" + "profiles"
// sections; kV1 is the legacy layout, unchanged.
json::Value snapshot(const core::ZmailSystem& sys, Schema v = Schema::kV1);

// Snapshot of a (possibly sharded) world.  Every exported value is merged
// partition-independently (summed counters, ISP-index-ordered per-ISP
// sections, the delivery-latency sample sorted before reduction), so in
// deterministic mode the emitted JSON is bit-identical at any shard or
// thread count >= 2; with shards == 1 it matches the whole-system snapshot
// byte for byte.  kV2 appends an "engine" section (windows, cross-shard
// messages, barrier audits) when the sharded engine is live.
json::Value snapshot(const core::ShardedSystem& sys, Schema v = Schema::kV1);

// Snapshot of a federated-bank world: ISP totals plus a "federation"
// section (rounds, inter-bank messages/bytes, cross-bank settlements,
// clearing transfers, violations, and per-bank seq/clearing positions).
// kV2 appends the robustness counters (retries, absorbed duplicates,
// re-requests) and the per-bank durable-store totals.
json::Value snapshot(const core::FederatedZmailSystem& sys,
                     Schema v = Schema::kV1);

// Named lazy metric sources.  Providers are invoked at snapshot() time, so
// a registry built before a run observes the state at export, not at
// registration.  Registration order is serialization order.
class MetricsRegistry {
 public:
  using Provider = std::function<json::Value()>;

  // False (with an error log) on a duplicate name: the first registration
  // wins, the new provider is dropped.  Silently shadowing the first in
  // the JSON output was the old behaviour, and it hid wiring bugs.
  bool add(std::string name, Provider provider);
  // Convenience: registers obs::snapshot(sys, <registry schema>); the
  // schema is read at snapshot() time, so set_schema() may follow.  The
  // system must outlive the registry's last snapshot() call.
  bool add_system(std::string name, const core::ZmailSystem& sys);
  bool add_system(std::string name, const core::ShardedSystem& sys);
  bool add_system(std::string name, const core::FederatedZmailSystem& sys);

  // Selects the export schema (default kV1, the legacy byte-stable
  // layout).  Affects the top-level "schema" string and every provider
  // registered via add_system().
  void set_schema(Schema v) noexcept { schema_ = v; }
  Schema schema() const noexcept { return schema_; }

  std::size_t size() const noexcept { return providers_.size(); }

  // {"schema": "zmail-obs-v<N>", "<name>": <provider()>, ...}
  json::Value snapshot() const;
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  std::vector<std::pair<std::string, Provider>> providers_;
  Schema schema_ = Schema::kV1;
};

}  // namespace zmail::obs
