// Reliable FIFO channel between one ordered pair of processes.
//
// Section 3: "Each message sent from p to q remains in the channel from p to
// q until it is eventually received by process q.  Messages ... are
// received, one at a time, in the same order in which they were sent."
#pragma once

#include <deque>

#include "ap/message.hpp"

namespace zmail::ap {

class Channel {
 public:
  void push(Message m) { queue_.push_back(std::move(m)); }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t size() const noexcept { return queue_.size(); }

  const Message& front() const { return queue_.front(); }
  Message pop() {
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  // Testing hook used by adversarial fixtures (message replay / duplication
  // is modelled as the adversary re-pushing a copied message).
  const std::deque<Message>& contents() const noexcept { return queue_; }

 private:
  std::deque<Message> queue_;
};

}  // namespace zmail::ap
