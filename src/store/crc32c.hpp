// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The durable store frames every WAL record and snapshot section with a
// CRC32C so that recovery can distinguish "end of valid log" from "valid
// record" at every byte.  Castagnoli is the storage-industry choice (iSCSI,
// ext4, RocksDB) because its error-detection properties at 32 bits are
// strictly better than the zlib polynomial for the short records a WAL
// carries.  Software slice-by-8 implementation — no SSE4.2 dependency, so
// the same bytes verify on any build host.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zmail::store {

// CRC of `data[0..len)`, starting from `seed` (pass the previous return
// value to extend a running CRC over discontiguous buffers; 0 for a fresh
// one).  The seed is the *finalized* CRC, not the internal inverted state,
// so crc32c(b, crc32c(a)) == crc32c(a || b).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0) noexcept;

}  // namespace zmail::store
