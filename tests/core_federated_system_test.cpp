#include "core/federated_system.hpp"

#include <gtest/gtest.h>

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

ZmailParams fed_params() {
  ZmailParams p;
  p.n_isps = 6;
  p.users_per_isp = 3;
  p.initial_user_balance = 30;
  p.minavail = 100;
  p.maxavail = 1'000;
  p.initial_avail = 500;
  return p;
}

TEST(FederatedSystem, MailFlowsAcrossBankBoundaries) {
  FederatedZmailSystem sys(fed_params(), 3, 1);
  // ISP 0 (bank 0) -> ISP 1 (bank 1), ISP 4 (bank 1) -> ISP 5 (bank 2).
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "x", "b"),
            SendResult::kSentPaid);
  EXPECT_EQ(sys.send_email(user(4, 0), user(5, 0), "y", "b"),
            SendResult::kSentPaid);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(1).user(0).balance, 31);
  EXPECT_EQ(sys.isp(5).user(0).balance, 31);
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(FederatedSystem, TradesGoToTheHomeBankOverTheNetwork) {
  ZmailParams p = fed_params();
  p.initial_avail = 120;  // near minavail: the first purchase triggers a buy
  FederatedZmailSystem sys(p, 3, 2);
  sys.enable_bank_trading(sim::kMinute);
  sys.buy_epennies(user(4, 0), 30);  // ISP 4's pool drops to 90 < 100
  sys.run_for(10 * sim::kMinute);
  EXPECT_EQ(sys.isp(4).avail(), 1'000);  // refilled to maxavail
  // The home bank (4 % 3 == 1) paid out of ISP 4's account.
  EXPECT_LT(sys.federation().isp_account(4), p.initial_isp_bank_account);
  EXPECT_GT(sys.federation().metrics().epennies_minted, 0);
  EXPECT_TRUE(sys.conservation_holds());
  EXPECT_GT(sys.bank_host_bytes(), 0u);
}

TEST(FederatedSystem, SnapshotRoundSettlesAcrossBanks) {
  FederatedZmailSystem sys(fed_params(), 2, 3);
  for (int k = 0; k < 4; ++k)
    sys.send_email(user(0, 0), user(1, 0), "s", "b");  // bank0 -> bank1
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);

  EXPECT_FALSE(sys.federation().round_open());
  EXPECT_TRUE(sys.federation().last_violations().empty());
  EXPECT_EQ(sys.federation().metrics().rounds_completed, 1u);
  EXPECT_EQ(sys.federation().isp_account(0),
            fed_params().initial_isp_bank_account - Money::from_epennies(4));
  EXPECT_EQ(sys.federation().isp_account(1),
            fed_params().initial_isp_bank_account + Money::from_epennies(4));
  EXPECT_EQ(sys.federation().metrics().settlements_cross_bank, 1u);
  EXPECT_EQ(sys.federation().metrics().clearing_transfers, 1u);
  // Clearing nets to zero across the federation.
  Money net = Money::zero();
  for (std::size_t b = 0; b < 2; ++b) net += sys.federation().clearing_position(b);
  EXPECT_TRUE(net.is_zero());
}

TEST(FederatedSystem, CheatDetectionStillWorksEndToEnd) {
  FederatedZmailSystem sys(fed_params(), 3, 4);
  sys.isp(2).set_misbehavior(Isp::Misbehavior::kFreeRide);
  for (int k = 0; k < 3; ++k)
    sys.send_email(user(2, 0), user(3, 0), "s", "b");
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  ASSERT_EQ(sys.federation().last_violations().size(), 1u);
  EXPECT_EQ(sys.federation().last_violations()[0].isp_i, 2u);
  EXPECT_EQ(sys.federation().last_violations()[0].isp_j, 3u);
}

TEST(FederatedSystem, QuiesceBuffersAcrossTheRound) {
  FederatedZmailSystem sys(fed_params(), 2, 5);
  sys.start_snapshot();
  sys.run_for(sim::kMinute);
  ASSERT_TRUE(sys.isp(0).in_quiesce());
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "held", "b"),
            SendResult::kBuffered);
  sys.run_for(15 * sim::kMinute);
  EXPECT_EQ(sys.isp(1).user(0).balance,
            fed_params().initial_user_balance + 1);
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(FederatedSystem, SingleBankMatchesCentralBehaviour) {
  FederatedZmailSystem sys(fed_params(), 1, 6);
  for (int k = 0; k < 5; ++k)
    sys.send_email(user(0, 0), user(3, 1), "s", "b");
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  EXPECT_TRUE(sys.federation().last_violations().empty());
  EXPECT_EQ(sys.federation().metrics().interbank_messages, 0u);
  EXPECT_EQ(sys.federation().metrics().settlements_intra_bank, 1u);
  EXPECT_TRUE(sys.conservation_holds());
}

}  // namespace
}  // namespace zmail::core
