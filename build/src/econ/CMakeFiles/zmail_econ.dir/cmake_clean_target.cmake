file(REMOVE_RECURSE
  "libzmail_econ.a"
)
