#include "core/obs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/system.hpp"

namespace zmail {
namespace {

core::ZmailSystem make_system() {
  core::ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.initial_user_balance = 10;
  return core::ZmailSystem(p, 7);
}

TEST(ObsToJson, IspMetricsCarriesEveryCounter) {
  core::IspMetrics m;
  m.emails_delivered = 3;
  m.refused_no_balance = 1;
  const json::Value j = obs::to_json(m);
  EXPECT_EQ(j.find("emails_delivered")->as_uint64(), 3u);
  EXPECT_EQ(j.find("refused_no_balance")->as_uint64(), 1u);
  // Field count guards against new IspMetrics counters being forgotten in
  // the exporter: one JSON key per struct field.
  EXPECT_EQ(j.items().size(), 22u);
}

TEST(ObsToJson, StatsShapes) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  const json::Value js = obs::to_json(s);
  EXPECT_EQ(js.find("count")->as_uint64(), 2u);
  EXPECT_DOUBLE_EQ(js.find("mean")->as_double(), 2.0);

  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  const json::Value jh = obs::to_json(h);
  EXPECT_EQ(jh.find("total")->as_uint64(), 1u);
  EXPECT_EQ(jh.find("counts")->size(), 10u);

  Sample sample;
  const json::Value je = obs::to_json(sample);
  EXPECT_EQ(je.find("count")->as_uint64(), 0u);
  EXPECT_EQ(je.find("mean"), nullptr);  // omitted when empty
}

TEST(ObsSnapshot, ReflectsSystemActivity) {
  core::ZmailSystem sys = make_system();
  const auto r = sys.send_email(net::make_user_address(0, 0),
                                net::make_user_address(1, 1), "hi", "body");
  EXPECT_EQ(r.result, core::SendResult::kSentPaid);
  sys.run_for(sim::kHour);

  const json::Value j = obs::snapshot(sys);
  EXPECT_EQ(j.find("n_isps")->as_uint64(), 2u);
  EXPECT_EQ(j.find("compliant_isps")->as_uint64(), 2u);
  EXPECT_GE(j.find("isp_totals")->find("emails_delivered")->as_uint64(), 1u);
  EXPECT_GT(j.find("network")->find("datagrams_sent")->as_uint64(), 0u);
  EXPECT_EQ(j.find("network")->find("smtp_bytes_received")->size(), 2u);
  ASSERT_NE(j.find("conservation"), nullptr);
  EXPECT_TRUE(j.find("conservation")->find("holds")->as_bool());
  EXPECT_EQ(j.find("per_isp")->size(), 2u);
}

TEST(ObsRegistry, ProvidersAreLazyAndOrdered) {
  int calls = 0;
  obs::MetricsRegistry reg;
  reg.add("first", [&] {
    ++calls;
    return json::Value(1);
  });
  reg.add("second", [&] {
    ++calls;
    return json::Value("two");
  });
  EXPECT_EQ(calls, 0);  // lazy: nothing invoked at registration
  const json::Value j = reg.snapshot();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(j.find("schema")->as_string(), "zmail-obs-v1");
  // Registration order == serialization order (after the schema key).
  EXPECT_EQ(j.items()[1].first, "first");
  EXPECT_EQ(j.items()[2].first, "second");
}

TEST(ObsRegistry, DuplicateNameIsRejectedFirstRegistrationWins) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.add("dup", [] { return json::Value(1); }));
  EXPECT_FALSE(reg.add("dup", [] { return json::Value(2); }));
  EXPECT_EQ(reg.size(), 1u);
  const json::Value j = reg.snapshot();
  EXPECT_EQ(j.find("dup")->as_int64(), 1);  // first registration wins
}

TEST(ObsRegistry, WriteFileRoundTripsThroughParser) {
  core::ZmailSystem sys = make_system();
  obs::MetricsRegistry reg;
  reg.add_system("system", sys);
  sys.run_for(sim::kMinute);

  const std::string path = "obs_test_out.json";
  std::string err;
  ASSERT_TRUE(reg.write_file(path, &err)) << err;

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const auto parsed = json::parse(ss.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("schema")->as_string(), "zmail-obs-v1");
  // add_system is lazy: run_for happened after registration, and the file
  // must reflect the post-run state.
  EXPECT_EQ(parsed->find("system")->find("sim_time")->as_int64(),
            static_cast<std::int64_t>(sim::kMinute));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zmail
