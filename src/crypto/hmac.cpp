#include "crypto/hmac.hpp"

namespace zmail::crypto {

namespace {
Digest hmac_impl(const Bytes& key, const std::uint8_t* msg,
                 std::size_t len) noexcept {
  constexpr std::size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) {
    const Digest d = sha256(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(msg, len);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}
}  // namespace

Digest hmac_sha256(const Bytes& key, const Bytes& message) noexcept {
  return hmac_impl(key, message.data(), message.size());
}

Digest hmac_sha256(const Bytes& key, std::string_view message) noexcept {
  return hmac_impl(key, reinterpret_cast<const std::uint8_t*>(message.data()),
                   message.size());
}

bool digest_equal(const Digest& a, const Digest& b) noexcept {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace zmail::crypto
