// Scenario runner: executes a Zmail scenario script (see
// src/core/scenario.hpp for the language) from a file or stdin.
//
//   ./scenario_runner path/to/script.zs
//   echo "world isps=2 users=2" | ./scenario_runner -
//
// With no argument, runs a built-in demo script.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/scenario.hpp"

using namespace zmail;

namespace {

const char* kDemoScript = R"(# Zmail demo: two compliant ISPs, one legacy.
world isps=3 users=4 balance=25 limit=50 compliant=110 seed=2005

# Normal correspondence.
send 0.0 1.1 subject Hello
send 1.1 0.0 subject Re:Hello
run 10m

# A legacy-world spam blast; compliant receivers are not paid for it,
# but it is free to send -- the unprotected corner of the deployment.
spam 2.0 count=12
run 1h

# A user tops up and the day rolls over.
buy 0.2 15
day
run 5m

# First billing period: verification + settlement.
snapshot
run 30m
expect violations 0
expect conservation

# The legacy ISP adopts Zmail; its spammer now pays like everyone else.
flip 2
spam 2.0 count=12
run 1h
expect conservation
print balances
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc < 2) {
    std::printf("(no script given; running the built-in demo)\n\n%s\n---\n",
                kDemoScript);
    text = kDemoScript;
  } else if (std::string(argv[1]) == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }

  core::ScenarioError err;
  const auto scenario = core::Scenario::parse(text, &err);
  if (!scenario) {
    std::fprintf(stderr, "parse error at line %zu: %s\n", err.line,
                 err.message.c_str());
    return 2;
  }

  core::ScenarioRunner runner(*scenario);
  const core::ScenarioResult result = runner.run();
  std::printf("%s", result.output_text().c_str());
  std::printf("executed %llu commands, %zu failure(s)\n",
              static_cast<unsigned long long>(result.commands_executed),
              result.failures.size());
  for (const auto& f : result.failures)
    std::fprintf(stderr, "  line %zu: %s\n", f.line, f.message.c_str());
  return result.ok() ? 0 : 1;
}
