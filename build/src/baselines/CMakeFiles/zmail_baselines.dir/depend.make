# Empty dependencies file for zmail_baselines.
# This may be replaced when dependencies are built.
