#include "net/email.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace zmail::net {
namespace {

EmailAddress addr(const char* s) { return *parse_address(s); }

TEST(Email, MakeEmailFillsStandardFields) {
  const EmailMessage m =
      make_email(addr("a@x.y"), addr("b@z.w"), "Hello", "body text");
  EXPECT_EQ(m.from.str(), "a@x.y");
  ASSERT_EQ(m.to.size(), 1u);
  EXPECT_EQ(m.to[0].str(), "b@z.w");
  EXPECT_EQ(m.subject(), "Hello");
  EXPECT_EQ(m.body, "body text");
  EXPECT_TRUE(m.header("Message-ID").has_value());
  EXPECT_EQ(m.truth, MailClass::kLegitimate);
}

TEST(Email, HeaderLookupIsCaseInsensitive) {
  EmailMessage m = make_email(addr("a@x.y"), addr("b@z.w"), "S", "B");
  EXPECT_EQ(m.header("subject").value(), "S");
  EXPECT_EQ(m.header("SUBJECT").value(), "S");
  EXPECT_FALSE(m.header("X-Missing").has_value());
}

TEST(Email, SetHeaderOverwritesExisting) {
  EmailMessage m = make_email(addr("a@x.y"), addr("b@z.w"), "S", "B");
  m.set_header("Subject", "S2");
  EXPECT_EQ(m.subject(), "S2");
  // No duplicate subject headers.
  int count = 0;
  for (const auto& [k, v] : m.headers)
    if (k == "Subject") ++count;
  EXPECT_EQ(count, 1);
}

TEST(Email, SerializeRoundTripsEverything) {
  EmailMessage m = make_email(addr("u1@isp0.example"), addr("u2@isp1.example"),
                              "Subj", "line1\nline2", MailClass::kNewsletter);
  m.set_header("X-Custom", "value with spaces");
  m.to.push_back(addr("u3@isp1.example"));
  const auto back = EmailMessage::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, m.from);
  EXPECT_EQ(back->to, m.to);
  EXPECT_EQ(back->headers, m.headers);
  EXPECT_EQ(back->body, m.body);
  EXPECT_EQ(back->truth, MailClass::kNewsletter);
}

TEST(Email, DeserializeRejectsGarbage) {
  EXPECT_FALSE(EmailMessage::deserialize({}).has_value());
  EXPECT_FALSE(
      EmailMessage::deserialize({0x01, 0x02, 0x03}).has_value());
}

TEST(Email, DeserializeRejectsBadAddress) {
  EmailMessage m = make_email(addr("a@x.y"), addr("b@z.w"), "S", "B");
  crypto::Bytes wire = m.serialize();
  // Corrupt the first address's first character to '@'.
  // Layout: u32 length, then the string.
  wire[4] = '@';
  EXPECT_FALSE(EmailMessage::deserialize(wire).has_value());
}

TEST(Email, Rfc822RenderingHasHeadersBlankLineBody) {
  EmailMessage m = make_email(addr("a@x.y"), addr("b@z.w"), "S", "the body");
  const std::string text = m.to_rfc822();
  EXPECT_NE(text.find("From: a@x.y\r\n"), std::string::npos);
  EXPECT_NE(text.find("To: b@z.w\r\n"), std::string::npos);
  EXPECT_NE(text.find("Subject: S\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\nthe body"), std::string::npos);
}

TEST(Email, WireSizeGrowsWithContent) {
  EmailMessage small = make_email(addr("a@x.y"), addr("b@z.w"), "s", "b");
  EmailMessage big = make_email(addr("a@x.y"), addr("b@z.w"), "s",
                                std::string(10'000, 'x'));
  EXPECT_GT(big.wire_size(), small.wire_size() + 9'000);
}

// Property: arbitrary header/body content survives binary serialization.
class EmailWireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmailWireFuzzTest, RandomMessagesRoundTrip) {
  zmail::Rng rng(GetParam());
  for (int m = 0; m < 30; ++m) {
    EmailMessage msg;
    msg.from = EmailAddress{
        "u" + std::to_string(rng.next_below(100)),
        "isp" + std::to_string(rng.next_below(10)) + ".example"};
    const std::size_t nto = 1 + rng.next_below(3);
    for (std::size_t r = 0; r < nto; ++r)
      msg.to.push_back(EmailAddress{
          "u" + std::to_string(rng.next_below(100)),
          "isp" + std::to_string(rng.next_below(10)) + ".example"});
    const std::size_t nh = rng.next_below(6);
    for (std::size_t h = 0; h < nh; ++h) {
      std::string value;
      for (std::size_t c = 0; c < rng.next_below(30); ++c)
        value += static_cast<char>(32 + rng.next_below(95));  // printable
      msg.headers.emplace_back("X-H" + std::to_string(h), value);
    }
    std::string body;
    for (std::size_t c = 0; c < rng.next_below(500); ++c)
      body += static_cast<char>(rng.next_below(256));  // any byte
    msg.body = body;
    msg.truth = static_cast<MailClass>(rng.next_below(6));

    const auto back = EmailMessage::deserialize(msg.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->from, msg.from);
    EXPECT_EQ(back->to, msg.to);
    EXPECT_EQ(back->headers, msg.headers);
    EXPECT_EQ(back->body, msg.body);
    EXPECT_EQ(back->truth, msg.truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmailWireFuzzTest,
                         ::testing::Range<std::uint64_t>(60, 66));

TEST(Email, MailClassNames) {
  EXPECT_EQ(mail_class_name(MailClass::kSpam), "spam");
  EXPECT_EQ(mail_class_name(MailClass::kLegitimate), "legitimate");
  EXPECT_EQ(mail_class_name(MailClass::kAcknowledgment), "acknowledgment");
  EXPECT_EQ(mail_class_name(MailClass::kVirus), "virus");
}

}  // namespace
}  // namespace zmail::net
