// Simulated host-to-host network with latency, bound to the event simulator.
//
// Hosts (ISP mail servers, the bank) register a handler for named datagrams;
// `send` schedules delivery after a sampled latency.  Delivery is reliable
// and per-pair FIFO (matching the AP channel abstraction); the byte counters
// feed the ISP-overhead experiment (E3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace zmail::net {

using HostId = std::size_t;
constexpr HostId kNoHost = static_cast<HostId>(-1);

struct Datagram {
  std::string type;
  crypto::Bytes payload;
  HostId from = kNoHost;
  HostId to = kNoHost;
};

// Latency model: base plus exponential jitter.
struct LatencyModel {
  sim::Duration base = 20 * sim::kMillisecond;
  sim::Duration jitter_mean = 10 * sim::kMillisecond;

  sim::Duration sample(Rng& rng) const {
    return base + sim::from_seconds(
                      rng.exponential(1.0 / sim::to_seconds(jitter_mean)));
  }
};

class Network {
 public:
  using HandlerFn = std::function<void(const Datagram&)>;

  Network(sim::Simulator& simulator, Rng rng,
          LatencyModel latency = LatencyModel{});

  // Registers a host; the handler runs at delivery time.
  HostId add_host(std::string name, HandlerFn handler);

  // Reliable, latency-delayed, per-pair FIFO delivery.
  void send(HostId from, HostId to, std::string type, crypto::Bytes payload);

  // MX-style name resolution (domain -> host).
  void bind_domain(const std::string& domain, HostId host);
  HostId resolve(const std::string& domain) const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_.at(h).name; }

  std::uint64_t datagrams_sent() const noexcept { return datagrams_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }
  std::uint64_t bytes_sent_to(HostId h) const {
    return bytes_to_.at(h);
  }

 private:
  struct Host {
    std::string name;
    HandlerFn handler;
    // Last scheduled delivery per sender, to preserve FIFO under jitter.
    std::map<HostId, sim::SimTime> last_delivery;
  };

  sim::Simulator& sim_;
  Rng rng_;
  LatencyModel latency_;
  std::vector<Host> hosts_;
  std::map<std::string, HostId> mx_;
  std::uint64_t datagrams_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> bytes_to_;
};

}  // namespace zmail::net
