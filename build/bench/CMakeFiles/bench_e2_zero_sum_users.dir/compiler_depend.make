# Empty compiler generated dependencies file for bench_e2_zero_sum_users.
# This may be replaced when dependencies are built.
